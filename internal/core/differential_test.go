package core

import (
	"math/rand"
	"testing"

	"rtcshare/internal/datagen"
	"rtcshare/internal/eval"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
	"rtcshare/internal/workload"
)

// pairsSet aliases the result-set type; the identifier "pairs" is taken
// by the package.
type pairsSet = pairs.Set

// This file is the end-to-end differential property test: the paper's
// correctness claim is that RTCSharing, FullSharing and NoSharing all
// compute the same Q_G (Theorems 1 and 2), so on random graphs ×
// random workloads every strategy — serial, batch-parallel, and the
// single shared engine — must agree pairwise with the compositional
// reference evaluator, which knows nothing about automata, DNF,
// reductions or caches.

// differentialCase is one random graph × workload combination.
type differentialCase struct {
	graphSeed, workSeed int64
	vertices, edges     int
	labels              int
}

// differentialCases enumerates ≥ 20 combinations, varying density and
// alphabet so the closure sub-queries range from near-empty to
// SCC-heavy.
func differentialCases() []differentialCase {
	var cases []differentialCase
	for i := int64(0); i < 7; i++ {
		for j := int64(0); j < 3; j++ {
			cases = append(cases, differentialCase{
				graphSeed: 100 + i,
				workSeed:  200 + 7*j + i,
				vertices:  48 + 16*int(i%3),
				edges:     (48 + 16*int(i%3)) * (2 + int(j)),
				labels:    3 + int(i%2),
			})
		}
	}
	return cases
}

func (c differentialCase) graph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := datagen.RMAT(datagen.RMATConfig{
		Vertices: c.vertices,
		Edges:    c.edges,
		Labels:   c.labels,
		Seed:     c.graphSeed,
	})
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	return g
}

// queries draws the workload: the paper's Pre·R+·Post batch units plus a
// few unconstrained random expressions so the test also covers
// alternation-heavy DNFs, stars, optionals and inverse labels.
func (c differentialCase) queries(t *testing.T, dict *graph.Dict) []rpq.Expr {
	t.Helper()
	wcfg := workload.DefaultConfig(2, c.workSeed)
	wcfg.MaxRPQs = 3
	sets, err := workload.Generate(dict, wcfg)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	var qs []rpq.Expr
	for _, s := range sets {
		qs = append(qs, s.Queries...)
	}
	rng := rand.New(rand.NewSource(c.workSeed))
	labels := dict.Names()
	for i := 0; i < 4; i++ {
		qs = append(qs, rpq.RandomExpr(rng, labels, 3))
	}
	return qs
}

// TestDifferentialUpdates is the update-oracle differential test:
// random insert/delete sequences on RMAT graphs, and after every batch
// the long-lived engine (incremental path: epoch-carried and patched
// structures) must agree with a fresh engine rebuilt from scratch over
// the updated graph AND with the compositional reference evaluator —
// crossed over layouts, closure algorithms, planners, strategies and
// the incremental/rebuild maintenance policies.
func TestDifferentialUpdates(t *testing.T) {
	configs := []Options{
		{}, // columnar, BFS closure, heuristic planner
		{Layout: LayoutMapSet},
		{TCAlgo: rtc.BitsetClosure},
		{Layout: LayoutMapSet, TCAlgo: rtc.NuutilaClosure},
		{Planner: PlannerCostBased, TCAlgo: rtc.PurdomClosure},
		{Strategy: FullSharing},
		{DisableIncremental: true}, // rebuild-on-update fallback policy
	}
	// The queries keep single-label closure bodies in play (the patched
	// path) next to multi-label bodies and closure-free clauses (the
	// carry/drop paths).
	queries := []rpq.Expr{
		rpq.MustParse("l0+"),
		rpq.MustParse("l0+.l1"),
		rpq.MustParse("l1.l0*.l2?"),
		rpq.MustParse("(l0.l1)+"),
		rpq.MustParse("l2|^l0+"),
	}

	for caseSeed := int64(0); caseSeed < 3; caseSeed++ {
		g, err := datagen.RMAT(datagen.RMATConfig{
			Vertices: 56,
			Edges:    168,
			Labels:   3,
			Seed:     300 + caseSeed,
		})
		if err != nil {
			t.Fatal(err)
		}

		// One shared update script per case, so every config sees the
		// same insert/delete sequence: ~1/5 deletes of existing edges,
		// the rest random inserts (duplicates included on purpose).
		rng := rand.New(rand.NewSource(400 + caseSeed))
		labels := []string{"l0", "l1", "l2"}
		var script [][]GraphUpdate
		for b := 0; b < 5; b++ {
			var batch []GraphUpdate
			for i := 0; i < 6; i++ {
				src, dst := graph.VID(rng.Intn(56)), graph.VID(rng.Intn(56))
				label := labels[rng.Intn(len(labels))]
				if rng.Intn(5) == 0 {
					// Delete something that exists when possible: walk to a
					// random existing edge of the label.
					if lid, ok := g.Dict().Lookup(label); ok {
						if succs := g.Successors(src, lid); len(succs) > 0 {
							dst = succs[rng.Intn(len(succs))]
						}
					}
					batch = append(batch, DeleteEdge(src, label, dst))
					continue
				}
				batch = append(batch, InsertEdge(src, label, dst))
			}
			script = append(script, batch)
		}

		for _, opts := range configs {
			engine := New(g, opts)
			// Warm the caches so the migration has structures to carry,
			// patch and drop.
			for _, q := range queries {
				if _, err := engine.Evaluate(q); err != nil {
					t.Fatalf("seed %d %+v: warmup %q: %v", caseSeed, opts, q, err)
				}
			}
			for b, batch := range script {
				if _, err := engine.ApplyUpdates(batch); err != nil {
					t.Fatalf("seed %d %+v batch %d: %v", caseSeed, opts, b, err)
				}
				rebuilt := New(engine.Graph(), opts)
				for _, q := range queries {
					got, err := engine.Evaluate(q)
					if err != nil {
						t.Fatalf("seed %d %+v batch %d: incremental %q: %v", caseSeed, opts, b, q, err)
					}
					fresh, err := rebuilt.Evaluate(q)
					if err != nil {
						t.Fatalf("seed %d %+v batch %d: rebuilt %q: %v", caseSeed, opts, b, q, err)
					}
					want := eval.Reference(engine.Graph(), q)
					if !got.Equal(want) {
						t.Errorf("seed %d %+v batch %d: %q: incremental %d pairs, reference %d",
							caseSeed, opts, b, q, got.Len(), want.Len())
					}
					if !fresh.Equal(want) {
						t.Errorf("seed %d %+v batch %d: %q: rebuilt %d pairs, reference %d",
							caseSeed, opts, b, q, fresh.Len(), want.Len())
					}
				}
			}
			if cc := engine.Cache().Counters(); cc.CrossEpochHits != 0 {
				t.Errorf("seed %d %+v: CrossEpochHits = %d", caseSeed, opts, cc.CrossEpochHits)
			}
		}
	}
}

func TestDifferentialStrategiesMatchReference(t *testing.T) {
	cases := differentialCases()
	if len(cases) < 20 {
		t.Fatalf("only %d graph/workload combinations, want ≥ 20", len(cases))
	}
	planners := []PlannerMode{PlannerHeuristic, PlannerCostBased}
	for _, c := range cases {
		g := c.graph(t)
		qs := c.queries(t, g.Dict())

		// The oracle, computed once per query.
		want := make([]*pairsSet, len(qs))
		for i, q := range qs {
			want[i] = eval.Reference(g, q)
		}

		// Every strategy × planner combination must agree with the
		// oracle: the cost-based planner may pick different anchors,
		// backward joins or automaton bypasses, but never different
		// results.
		for _, strategy := range strategies() {
			for _, planner := range planners {
				engine := New(g, Options{Strategy: strategy, Planner: planner})
				for i, q := range qs {
					got, err := engine.Evaluate(q)
					if err != nil {
						t.Fatalf("seed %d/%d %v/%v: evaluate %q: %v", c.graphSeed, c.workSeed, strategy, planner, q, err)
					}
					if !got.Equal(want[i]) {
						t.Errorf("seed %d/%d %v/%v: %q: engine %d pairs, reference %d pairs",
							c.graphSeed, c.workSeed, strategy, planner, q, got.Len(), want[i].Len())
					}
				}
			}
		}

		// The data plane must never change answers: the seed's map-set
		// executor, the bitset closure hybrid, their combination, and the
		// columnar executor's native relation results all run the same
		// oracle. (The columnar default is already covered above.)
		for _, opts := range []Options{
			{Layout: LayoutMapSet},
			{TCAlgo: rtc.BitsetClosure},
			{Layout: LayoutMapSet, TCAlgo: rtc.BitsetClosure},
			{Strategy: FullSharing, Layout: LayoutMapSet},
		} {
			engine := New(g, opts)
			for i, q := range qs {
				got, err := engine.Evaluate(q)
				if err != nil {
					t.Fatalf("seed %d/%d %+v: evaluate %q: %v", c.graphSeed, c.workSeed, opts, q, err)
				}
				if !got.Equal(want[i]) {
					t.Errorf("seed %d/%d %+v: %q: engine %d pairs, reference %d pairs",
						c.graphSeed, c.workSeed, opts, q, got.Len(), want[i].Len())
				}
			}
		}
		relEngine := New(g, Options{TCAlgo: rtc.BitsetClosure})
		for i, q := range qs {
			got, err := relEngine.EvaluateRel(q)
			if err != nil {
				t.Fatalf("seed %d/%d rel: evaluate %q: %v", c.graphSeed, c.workSeed, q, err)
			}
			if !got.EqualSet(want[i]) {
				t.Errorf("seed %d/%d rel: %q: engine %d pairs, reference %d pairs",
					c.graphSeed, c.workSeed, q, got.Len(), want[i].Len())
			}
		}

		// The parallel path must agree with the same oracle under both
		// planners.
		for _, planner := range planners {
			engine := New(g, Options{Planner: planner})
			got, err := engine.EvaluateBatchParallel(qs, 4)
			if err != nil {
				t.Fatalf("seed %d/%d parallel/%v: %v", c.graphSeed, c.workSeed, planner, err)
			}
			for i := range qs {
				if !got[i].Equal(want[i]) {
					t.Errorf("seed %d/%d parallel/%v: %q: got %d pairs, reference %d pairs",
						c.graphSeed, c.workSeed, planner, qs[i], got[i].Len(), want[i].Len())
				}
			}
		}
	}
}
