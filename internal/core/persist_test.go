package core

import (
	"testing"

	"rtcshare/internal/fixtures"
	"rtcshare/internal/graph"
	"rtcshare/internal/rpq"
)

// persistWarmQueries populate every cache region: RTC structures,
// memoised relations, and (under FullSharing) full closures.
var persistWarmQueries = []string{"b.c", "d.(b.c)+.c", "(b.c)*", "a.(e.f)*"}

func warmSnapshotEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(fixtures.Figure1(), opts)
	for _, q := range persistWarmQueries {
		if _, err := e.EvaluateRel(rpq.MustParse(q)); err != nil {
			t.Fatalf("warm %s: %v", q, err)
		}
	}
	return e
}

func TestSnapshotStateRestoreRoundTrip(t *testing.T) {
	for _, strat := range []Strategy{RTCSharing, FullSharing} {
		e := warmSnapshotEngine(t, Options{Strategy: strat})
		st := e.SnapshotState()
		if st.Epoch != e.Epoch() {
			t.Fatalf("%v: snapshot epoch %d, engine %d", strat, st.Epoch, e.Epoch())
		}
		if len(st.RTCs)+len(st.Fulls) == 0 || len(st.Relations) == 0 {
			t.Fatalf("%v: empty snapshot: %d RTCs, %d fulls, %d relations",
				strat, len(st.RTCs), len(st.Fulls), len(st.Relations))
		}
		r, err := RestoreEngine(st, Options{Strategy: strat})
		if err != nil {
			t.Fatalf("%v: restore: %v", strat, err)
		}
		for _, q := range persistWarmQueries {
			want, err := e.EvaluateRel(rpq.MustParse(q))
			if err != nil {
				t.Fatal(err)
			}
			got, err := r.EvaluateRel(rpq.MustParse(q))
			if err != nil {
				t.Fatalf("%v: restored engine: %s: %v", strat, q, err)
			}
			if !got.Equal(want) {
				t.Errorf("%v: %s: restored answers differ", strat, q)
			}
		}
		// Every structure came from the snapshot: zero misses, and no
		// cross-epoch reuse.
		c := r.Cache().Counters()
		if c.Misses != 0 || c.RelMisses != 0 {
			t.Errorf("%v: restored engine recomputed: %d misses, %d relation misses", strat, c.Misses, c.RelMisses)
		}
		if c.CrossEpochHits != 0 {
			t.Errorf("%v: CrossEpochHits = %d", strat, c.CrossEpochHits)
		}
		// The restored structures report real summaries (derived, not
		// stored).
		for _, s := range r.SharedSummaries() {
			if s.R == "" || s.SharedPairs < 0 {
				t.Errorf("%v: bad restored summary %+v", strat, s)
			}
		}
	}
}

// TestSnapshotStateSkipsStaleEpochs pins that a snapshot describes
// exactly one graph version: entries computed before an update are not
// exported.
func TestSnapshotStateSkipsStaleEpochs(t *testing.T) {
	e := warmSnapshotEngine(t, Options{})
	res, err := e.ApplyUpdates([]GraphUpdate{{Op: OpInsertEdge, Src: 0, Dst: 9, Label: "b"}})
	if err != nil {
		t.Fatal(err)
	}
	st := e.SnapshotState()
	if st.Epoch != res.Epoch {
		t.Fatalf("snapshot epoch %d, want %d", st.Epoch, res.Epoch)
	}
	for key := range st.Relations {
		if _, _, ok := e.CachedResult(rpq.MustParse(key)); !ok {
			t.Errorf("snapshot exported %q which the cache no longer serves", key)
		}
	}
}

func TestRestoreEngineRejectsMismatchedStructures(t *testing.T) {
	st := warmSnapshotEngine(t, Options{}).SnapshotState()
	small := graph.NewBuilder(2)
	small.AddEdge(0, "b", 1)
	stSmall := *st
	stSmall.Graph = small.Build()
	if _, err := RestoreEngine(&stSmall, Options{}); err == nil {
		t.Error("RTCs spanning the wrong vertex count were accepted")
	}
	stFulls := *st
	stFulls.RTCs = nil
	stFulls.Fulls = warmSnapshotEngine(t, Options{Strategy: FullSharing}).SnapshotState().Fulls
	stFulls.Graph = small.Build()
	stFulls.Relations = nil
	if _, err := RestoreEngine(&stFulls, Options{}); err == nil {
		t.Error("closures spanning the wrong vertex count were accepted")
	}
	stRels := *st
	stRels.RTCs = nil
	stRels.Graph = small.Build()
	if _, err := RestoreEngine(&stRels, Options{}); err == nil {
		t.Error("relations spanning the wrong vertex count were accepted")
	}
	if _, err := RestoreEngine(nil, Options{}); err == nil {
		t.Error("nil snapshot was accepted")
	}
	if _, err := RestoreEngine(&SnapshotState{}, Options{}); err == nil {
		t.Error("graphless snapshot was accepted")
	}
}

// TestRestoreEngineNonCaching pins the documented degradation: a
// non-caching configuration restores graph and epoch only.
func TestRestoreEngineNonCaching(t *testing.T) {
	st := warmSnapshotEngine(t, Options{}).SnapshotState()
	e, err := RestoreEngine(st, Options{Strategy: NoSharing})
	if err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != st.Epoch {
		t.Fatalf("epoch %d, want %d", e.Epoch(), st.Epoch)
	}
	if _, err := e.EvaluateRel(rpq.MustParse("b.c")); err != nil {
		t.Fatal(err)
	}
}

// TestInstallStructureExistingWins pins the race rule: an entry already
// in the cache is not replaced by a restored copy.
func TestInstallStructureExistingWins(t *testing.T) {
	e := warmSnapshotEngine(t, Options{})
	st := e.SnapshotState()
	r, err := RestoreEngine(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for key := range st.RTCs {
		r.Cache().installStructure(nsRTC+key, &rtcValue{})
	}
	for _, q := range persistWarmQueries {
		if _, err := r.EvaluateRel(rpq.MustParse(q)); err != nil {
			t.Fatalf("after duplicate install: %s: %v", q, err)
		}
	}
	for key, rel := range st.Relations {
		if r.Cache().installRelation(key, rel) {
			t.Errorf("installRelation(%q) replaced an existing entry", key)
		}
	}
}
