package core

import (
	"context"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"rtcshare/internal/datagen"
	"rtcshare/internal/eval"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
)

// This file is the differential streaming suite: the delivery layer's
// contract is that a stream, a sealed evaluation, and a cursor-resumed
// page over the same graph epoch agree pair-for-pair — order included —
// and that the ASK and witness probes never disagree with the sealed
// answer they short-circuit. Every test here drives the streams against
// the sealed engine or the compositional reference oracle.

// drainStream collects the whole stream through a fixed-size buffer,
// exercising the chunk boundaries the buffer size induces.
func drainStream(t *testing.T, s *ResultStream, bufSize int) []pairs.Pair {
	t.Helper()
	defer s.Close()
	var out []pairs.Pair
	buf := make([]pairs.Pair, bufSize)
	for {
		n, done, err := s.Next(buf)
		if err != nil {
			t.Fatalf("stream Next: %v", err)
		}
		out = append(out, buf[:n]...)
		if done {
			return out
		}
	}
}

// fingerprint is an order-independent hash of a pair multiset (XOR of
// per-pair FNV hashes), so two enumerations can be compared without
// trusting either one's order.
func fingerprint(ps []pairs.Pair) uint64 {
	var acc uint64
	for _, p := range ps {
		h := fnv.New64a()
		var b [8]byte
		b[0], b[1], b[2], b[3] = byte(p.Src), byte(p.Src>>8), byte(p.Src>>16), byte(p.Src>>24)
		b[4], b[5], b[6], b[7] = byte(p.Dst), byte(p.Dst>>8), byte(p.Dst>>16), byte(p.Dst>>24)
		h.Write(b[:])
		acc ^= h.Sum64()
	}
	return acc
}

func pairsEqual(got, want []pairs.Pair) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestStreamMatchesSealedDifferential is the core oracle: across random
// graphs × workloads × strategies × planners × layouts, a live stream
// must reproduce the sealed relation's exact (src, dst) order — prefix
// equality, not just set equality — through awkward buffer sizes, and
// the memo-warm sealed-backed stream must agree with both.
func TestStreamMatchesSealedDifferential(t *testing.T) {
	bufSizes := []int{1, 3, 17, 256}
	for ci, c := range differentialCases() {
		g := c.graph(t)
		qs := c.queries(t, g.Dict())

		configs := []Options{
			{Strategy: RTCSharing, Planner: PlannerHeuristic},
			{Strategy: RTCSharing, Planner: PlannerCostBased},
			{Strategy: FullSharing, Planner: PlannerCostBased},
			{Strategy: NoSharing, Planner: PlannerHeuristic},
			{Layout: LayoutMapSet},
		}
		for _, opts := range configs {
			sealedEngine := New(g, opts)
			streamEngine := New(g, opts)
			for qi, q := range qs {
				want, err := sealedEngine.EvaluateRel(q)
				if err != nil {
					t.Fatalf("case %d %+v: sealed %q: %v", ci, opts, q, err)
				}
				wantPairs := want.Sorted()

				// Live stream from a cold engine: the per-source re-drive.
				s, err := streamEngine.OpenStream(context.Background(), q, StreamOptions{})
				if err != nil {
					t.Fatalf("case %d %+v: open %q: %v", ci, opts, q, err)
				}
				got := drainStream(t, s, bufSizes[qi%len(bufSizes)])
				if !pairsEqual(got, wantPairs) {
					t.Fatalf("case %d %+v: %q: stream %d pairs != sealed %d pairs (prefix order)",
						ci, opts, q, len(got), len(wantPairs))
				}
				if fingerprint(got) != fingerprint(wantPairs) {
					t.Fatalf("case %d %+v: %q: stream fingerprint diverges from sealed", ci, opts, q)
				}

				// Memo-warm stream from the sealed engine: the cached-relation
				// fast path must page out the identical sequence.
				s2, err := sealedEngine.OpenStream(context.Background(), q, StreamOptions{})
				if err != nil {
					t.Fatalf("case %d %+v: warm open %q: %v", ci, opts, q, err)
				}
				if s2.Epoch() != sealedEngine.Epoch() {
					t.Fatalf("case %d: warm stream epoch %d != engine epoch %d", ci, s2.Epoch(), sealedEngine.Epoch())
				}
				warm := drainStream(t, s2, bufSizes[(qi+1)%len(bufSizes)])
				if !pairsEqual(warm, wantPairs) {
					t.Fatalf("case %d %+v: %q: warm stream diverges from sealed", ci, opts, q)
				}
			}
			if cc := streamEngine.Cache().Counters(); cc.CrossEpochHits != 0 {
				t.Fatalf("case %d %+v: CrossEpochHits = %d", ci, opts, cc.CrossEpochHits)
			}
		}
	}
}

// TestStreamLimitIsPrefix pins the LIMIT contract: a limit-k stream is
// exactly the first k pairs of the sealed order, for every k including
// the degenerate ones.
func TestStreamLimitIsPrefix(t *testing.T) {
	c := differentialCases()[0]
	g := c.graph(t)
	qs := c.queries(t, g.Dict())
	engine := New(g, Options{})
	oracle := New(g, Options{})
	for _, q := range qs {
		want, err := oracle.EvaluateRel(q)
		if err != nil {
			t.Fatalf("sealed %q: %v", q, err)
		}
		sorted := want.Sorted()
		for _, k := range []int{1, 2, 5, len(sorted) - 1, len(sorted), len(sorted) + 10} {
			if k <= 0 {
				continue
			}
			s, err := engine.OpenStream(context.Background(), q, StreamOptions{Limit: k})
			if err != nil {
				t.Fatalf("open %q limit %d: %v", q, k, err)
			}
			got := drainStream(t, s, 7)
			wantK := sorted
			if k < len(sorted) {
				wantK = sorted[:k]
			}
			if !pairsEqual(got, wantK) {
				t.Fatalf("%q limit %d: got %d pairs, want prefix of %d", q, k, len(got), len(wantK))
			}
			if st := s.Stats(); st.Pairs != int64(len(got)) {
				t.Fatalf("%q limit %d: Stats().Pairs = %d, want %d", q, k, st.Pairs, len(got))
			}
		}
	}
}

// TestStreamPinnedAcrossUpdates checks the epoch-pinning contract: a
// stream opened before an update batch keeps answering from its pinned
// graph version even while updates land and later streams see the new
// epoch — with the cross-epoch cache tripwire at zero throughout.
func TestStreamPinnedAcrossUpdates(t *testing.T) {
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 56, Edges: 168, Labels: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	queries := []rpq.Expr{
		rpq.MustParse("l0+"),
		rpq.MustParse("l0+.l1"),
		rpq.MustParse("l1.l0*.l2?"),
		rpq.MustParse("l2|^l0+"),
	}
	for _, opts := range []Options{{}, {Strategy: FullSharing}, {Planner: PlannerCostBased}} {
		engine := New(g, opts)
		g0 := engine.Graph()
		oracles := make([]*pairsSet, len(queries))
		for i, q := range queries {
			oracles[i] = eval.Reference(g0, q)
		}

		// Open all streams at epoch 0, then mutate underneath them.
		streams := make([]*ResultStream, len(queries))
		for i, q := range queries {
			s, err := engine.OpenStream(context.Background(), q, StreamOptions{})
			if err != nil {
				t.Fatalf("%+v: open %q: %v", opts, q, err)
			}
			streams[i] = s
		}
		rng := rand.New(rand.NewSource(99))
		for b := 0; b < 3; b++ {
			var batch []GraphUpdate
			for i := 0; i < 8; i++ {
				batch = append(batch, InsertEdge(
					graph.VID(rng.Intn(56)), []string{"l0", "l1", "l2"}[rng.Intn(3)], graph.VID(rng.Intn(56))))
			}
			if _, err := engine.ApplyUpdates(batch); err != nil {
				t.Fatalf("%+v: updates: %v", opts, err)
			}
		}

		for i, q := range queries {
			got := drainStream(t, streams[i], 13)
			want := oracles[i].Sorted()
			if !pairsEqual(got, want) {
				t.Fatalf("%+v: %q: pinned stream diverges from pre-update reference (%d vs %d pairs)",
					opts, q, len(got), len(want))
			}
			// A fresh stream sees the post-update graph.
			s, err := engine.OpenStream(context.Background(), q, StreamOptions{})
			if err != nil {
				t.Fatalf("%+v: reopen %q: %v", opts, q, err)
			}
			fresh := drainStream(t, s, 13)
			freshWant := eval.Reference(engine.Graph(), q).Sorted()
			if !pairsEqual(fresh, freshWant) {
				t.Fatalf("%+v: %q: post-update stream diverges from reference", opts, q)
			}
		}
		if cc := engine.Cache().Counters(); cc.CrossEpochHits != 0 {
			t.Fatalf("%+v: CrossEpochHits = %d", opts, cc.CrossEpochHits)
		}
	}
}

// TestStreamConcurrentUpdates races open streams against live update
// batches (meaningful under -race): draining threads must keep reading
// their pinned version pair-for-pair while the writer advances epochs.
func TestStreamConcurrentUpdates(t *testing.T) {
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 48, Edges: 144, Labels: 3, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	engine := New(g, Options{})
	queries := []rpq.Expr{
		rpq.MustParse("l0+"),
		rpq.MustParse("l0+.l1"),
		rpq.MustParse("l2|^l0+"),
	}
	g0 := engine.Graph()
	oracles := make([][]pairs.Pair, len(queries))
	for i, q := range queries {
		oracles[i] = eval.Reference(g0, q).Sorted()
	}
	streams := make([]*ResultStream, len(queries))
	for i, q := range queries {
		s, err := engine.OpenStream(context.Background(), q, StreamOptions{})
		if err != nil {
			t.Fatalf("open %q: %v", q, err)
		}
		streams[i] = s
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(31))
		for b := 0; b < 6; b++ {
			var batch []GraphUpdate
			for i := 0; i < 5; i++ {
				batch = append(batch, InsertEdge(
					graph.VID(rng.Intn(48)), []string{"l0", "l1", "l2"}[rng.Intn(3)], graph.VID(rng.Intn(48))))
			}
			if _, err := engine.ApplyUpdates(batch); err != nil {
				t.Errorf("updates: %v", err)
				return
			}
		}
	}()

	var drains sync.WaitGroup
	for i := range streams {
		drains.Add(1)
		go func(i int) {
			defer drains.Done()
			got := drainStream(t, streams[i], 5)
			if !pairsEqual(got, oracles[i]) {
				t.Errorf("%q: stream raced with updates diverges from pinned reference", queries[i])
			}
		}(i)
	}
	drains.Wait()
	wg.Wait()
	if cc := engine.Cache().Counters(); cc.CrossEpochHits != 0 {
		t.Fatalf("CrossEpochHits = %d", cc.CrossEpochHits)
	}
}

// TestStreamCancellation: a cancelled context kills the stream with the
// context's error, and the error is sticky.
func TestStreamCancellation(t *testing.T) {
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 64, Edges: 256, Labels: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	engine := New(g, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	s, err := engine.OpenStream(ctx, rpq.MustParse("l0+.l1?"), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]pairs.Pair, 4)
	if _, _, err := s.Next(buf); err != nil {
		t.Fatalf("first Next: %v", err)
	}
	cancel()
	var gotErr error
	for i := 0; i < 1000; i++ {
		_, done, err := s.Next(buf)
		if err != nil {
			gotErr = err
			break
		}
		if done {
			break
		}
	}
	if gotErr == nil {
		t.Skip("stream drained before a cancellation checkpoint fired")
	}
	if _, _, err := s.Next(buf); err == nil {
		t.Fatal("error not sticky after cancellation")
	}
	s.Close()
	if _, _, err := s.Next(buf); err != ErrStreamClosed {
		t.Fatalf("Next after Close = %v, want ErrStreamClosed", err)
	}
}

// TestAskMatchesSealed: the existence probe must agree with sealed
// non-emptiness across the full differential matrix.
func TestAskMatchesSealed(t *testing.T) {
	for ci, c := range differentialCases() {
		if ci%3 != 0 { // a third of the matrix keeps the runtime sane
			continue
		}
		g := c.graph(t)
		qs := c.queries(t, g.Dict())
		for _, opts := range []Options{
			{Strategy: RTCSharing, Planner: PlannerHeuristic},
			{Strategy: RTCSharing, Planner: PlannerCostBased},
			{Strategy: FullSharing, Planner: PlannerCostBased},
			{Strategy: NoSharing, Planner: PlannerHeuristic},
			{Layout: LayoutMapSet},
		} {
			engine := New(g, opts)
			oracle := New(g, opts)
			for _, q := range qs {
				want, err := oracle.EvaluateRel(q)
				if err != nil {
					t.Fatalf("case %d: sealed %q: %v", ci, q, err)
				}
				found, epoch, _, err := engine.AskCounted(context.Background(), q)
				if err != nil {
					t.Fatalf("case %d %+v: ask %q: %v", ci, opts, q, err)
				}
				if found != (want.Len() > 0) {
					t.Fatalf("case %d %+v: ask %q = %v, sealed has %d pairs", ci, opts, q, found, want.Len())
				}
				if epoch != engine.Epoch() {
					t.Fatalf("case %d: ask epoch %d != engine epoch %d", ci, epoch, engine.Epoch())
				}
			}
		}
	}
}

// TestAskShortCircuits pins the instrumentation claim: on a closure-
// heavy graph whose full answer is quadratic, the ASK probe stops within
// one source expansion of the first hit — the rows counter stays linear
// in one run, orders of magnitude below the sealed row count.
func TestAskShortCircuits(t *testing.T) {
	const n = 96
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(graph.VID(i), "l0", graph.VID((i+1)%n))
	}
	b.MustAddEdge(0, "l1", 1)
	g := b.Build()

	for _, opts := range []Options{{}, {Strategy: FullSharing}, {Strategy: NoSharing}} {
		engine := New(g, opts)
		q := rpq.MustParse("l0+") // one big cycle: n² pairs sealed
		found, _, rows, err := engine.AskCounted(context.Background(), q)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !found {
			t.Fatalf("%+v: ask(l0+) = false on a cycle", opts)
		}
		// The sealed evaluation touches ≥ n² join rows; the probe must
		// stop inside the first source's expansion (≤ one chunk ≈ 3n
		// rows of slack for the Pre scan + first member probes).
		if rows > 3*n {
			t.Fatalf("%+v: ask scanned %d rows, want ≤ %d (short-circuit broken)", opts, rows, 3*n)
		}

		// Empty answers scan everything but still report false.
		empty := rpq.MustParse("l1.l1")
		found, _, _, err = engine.AskCounted(context.Background(), empty)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if found {
			t.Fatalf("%+v: ask(l1.l1) = true, want false", opts)
		}
	}

	// The memo-warm fast path answers from the cached relation with zero
	// rows scanned.
	engine := New(g, Options{})
	q := rpq.MustParse("l0+")
	if _, err := engine.EvaluateRel(q); err != nil {
		t.Fatal(err)
	}
	found, _, rows, err := engine.AskCounted(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !found || rows != 0 {
		t.Fatalf("cached ask = (%v, %d rows), want (true, 0)", found, rows)
	}
}

// TestAskBackwardProbe forces the cost-based ASK planner into the
// backward direction with a hugely selective Post, and checks the probe
// still answers correctly with a small row count.
func TestAskBackwardProbe(t *testing.T) {
	const n = 80
	b := graph.NewBuilder(n)
	// Dense Pre: many pre-edges per vertex, so the forward plan's
	// Pre⋈R+ join term (|Pre|·jt) dwarfs the backward plan's extra
	// eval of the one-edge Post, forcing the planner backward.
	for i := 0; i < n; i++ {
		for k := 0; k < 8; k++ {
			b.MustAddEdge(graph.VID(i), "pre", graph.VID((i*7+k+1)%n))
		}
		b.MustAddEdge(graph.VID(i), "l0", graph.VID((i+1)%n))
	}
	// Selective Post: exactly one edge.
	b.MustAddEdge(3, "post", 4)
	g := b.Build()

	engine := New(g, Options{Planner: PlannerCostBased})
	q := rpq.MustParse("pre.l0+.post")
	found, _, rows, err := engine.AskCounted(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("ask(pre.l0+.post) = false, want true")
	}
	want, err := New(g, Options{}).EvaluateRel(q)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture broken: sealed result empty")
	}
	if rows > 5*n {
		t.Fatalf("backward ask scanned %d rows, want ≤ %d", rows, 5*n)
	}
	// The uncounted wrapper agrees.
	found2, epoch, err := engine.Ask(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !found2 || epoch != engine.Epoch() {
		t.Fatalf("Ask = (%v, %d), want (true, %d)", found2, epoch, engine.Epoch())
	}
}

// TestWitnessAgainstReference: for sampled member pairs the witness must
// exist, its label word must actually walk src → dst in the graph, and
// the word must be in the query's language (checked on a line graph of
// the word); for non-member pairs the witness must not exist.
func TestWitnessAgainstReference(t *testing.T) {
	for ci, c := range differentialCases() {
		if ci%4 != 0 {
			continue
		}
		g := c.graph(t)
		qs := c.queries(t, g.Dict())
		engine := New(g, Options{})
		for _, q := range qs {
			want := eval.Reference(g, q)
			members := want.Sorted()
			step := 1
			if len(members) > 8 {
				step = len(members) / 8
			}
			for i := 0; i < len(members); i += step {
				p := members[i]
				wp, ok, err := engine.Witness(context.Background(), q, p.Src, p.Dst)
				if err != nil {
					t.Fatalf("case %d: witness %q (%d,%d): %v", ci, q, p.Src, p.Dst, err)
				}
				if !ok {
					t.Fatalf("case %d: witness %q (%d,%d): no witness for a member pair", ci, q, p.Src, p.Dst)
				}
				validateWitness(t, g, q, wp)
			}
			// Sample non-members.
			rng := rand.New(rand.NewSource(int64(ci)*31 + 7))
			for tries := 0; tries < 8; tries++ {
				src := graph.VID(rng.Intn(g.NumVertices()))
				dst := graph.VID(rng.Intn(g.NumVertices()))
				if want.Contains(src, dst) {
					continue
				}
				if _, ok, err := engine.Witness(context.Background(), q, src, dst); err != nil {
					t.Fatalf("case %d: witness %q: %v", ci, q, err)
				} else if ok {
					t.Fatalf("case %d: witness %q (%d,%d): witness for a non-member pair", ci, q, src, dst)
				}
			}
		}
	}
}

// validateWitness checks both halves of the witness contract.
func validateWitness(t *testing.T, g *graph.Graph, q rpq.Expr, wp WitnessPath) {
	t.Helper()
	// Half 1: the label word walks Src → Dst in g (frontier simulation,
	// since a word can follow many concrete edge paths).
	frontier := map[graph.VID]bool{wp.Src: true}
	for _, step := range wp.Labels {
		name, inverse := step, false
		if strings.HasPrefix(step, "^") {
			name, inverse = step[1:], true
		}
		lid, ok := g.Dict().Lookup(name)
		if !ok {
			t.Fatalf("witness %q: unknown label %q", q, step)
		}
		next := map[graph.VID]bool{}
		for v := range frontier {
			var ws []graph.VID
			if inverse {
				ws = g.Predecessors(v, lid)
			} else {
				ws = g.Successors(v, lid)
			}
			for _, w := range ws {
				next[w] = true
			}
		}
		frontier = next
	}
	if !frontier[wp.Dst] {
		t.Fatalf("witness %q (%d,%d): word %v does not reach Dst", q, wp.Src, wp.Dst, wp.Labels)
	}

	// Half 2: the word is in L(q) — build the word's line graph (inverse
	// steps become backward edges) and ask the reference oracle whether q
	// connects its endpoints.
	k := len(wp.Labels)
	lb := graph.NewBuilder(k + 1)
	for i, step := range wp.Labels {
		name, inverse := step, false
		if strings.HasPrefix(step, "^") {
			name, inverse = step[1:], true
		}
		if inverse {
			lb.MustAddEdge(graph.VID(i+1), name, graph.VID(i))
		} else {
			lb.MustAddEdge(graph.VID(i), name, graph.VID(i+1))
		}
	}
	if !eval.Reference(lb.Build(), q).Contains(0, graph.VID(k)) {
		t.Fatalf("witness %q (%d,%d): word %v not accepted by the query", q, wp.Src, wp.Dst, wp.Labels)
	}
}

// TestWitnessShortest pins minimality and the zero-length case on
// deterministic fixtures.
func TestWitnessShortest(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, "l0", 1)
	b.MustAddEdge(1, "l0", 2)
	b.MustAddEdge(0, "l0", 2) // shortcut: 0 → 2 in one step
	g := b.Build()
	engine := New(g, Options{})

	wp, ok, err := engine.Witness(context.Background(), rpq.MustParse("l0+"), 0, 2)
	if err != nil || !ok {
		t.Fatalf("witness = (%v, %v)", ok, err)
	}
	if len(wp.Labels) != 1 {
		t.Fatalf("witness labels = %v, want the 1-step shortcut", wp.Labels)
	}

	// The empty word witnesses (v, v) under a star.
	wp, ok, err = engine.Witness(context.Background(), rpq.MustParse("l0*"), 3, 3)
	if err != nil || !ok {
		t.Fatalf("star self witness = (%v, %v)", ok, err)
	}
	if len(wp.Labels) != 0 {
		t.Fatalf("star self witness labels = %v, want empty", wp.Labels)
	}

	// Out-of-range pairs error instead of panicking.
	if _, _, err := engine.Witness(context.Background(), rpq.MustParse("l0+"), 0, 99); err == nil {
		t.Fatal("out-of-range witness: want error")
	}
}
