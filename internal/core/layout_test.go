package core

import (
	"testing"

	"rtcshare/internal/fixtures"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
)

// fig1Queries is a small batch over the paper's worked example: the
// Example 1 query plus star/backward-ish variants so the gate exercises
// the whole join surface.
func fig1Queries(t testing.TB) []rpq.Expr {
	t.Helper()
	var qs []rpq.Expr
	for _, s := range []string{"d.(b.c)+.c", "a.(b.c)*", "d.(b.c)+", "(b.c)+.c"} {
		qs = append(qs, rpq.MustParse(s))
	}
	return qs
}

// layoutAllocs measures steady-state allocations per batch evaluation on
// a warm engine of the given configuration.
func layoutAllocs(t testing.TB, opts Options) float64 {
	t.Helper()
	g := fixtures.Figure1()
	e := New(g, opts)
	qs := fig1Queries(t)
	run := func() {
		for _, q := range qs {
			if _, err := e.Evaluate(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	run() // warm caches, pools and evaluators
	return testing.AllocsPerRun(50, run)
}

// TestLayoutAllocGateFigure1 is the CI allocation gate of the columnar
// refactor: on the paper's Fig. 1 fixture the columnar executor must
// never allocate more than the seed's map executor per warm batch —
// with both the BFS and the bitset closure. A regression here means the
// pooling broke or a hot path regained a per-call allocation.
func TestLayoutAllocGateFigure1(t *testing.T) {
	mapAllocs := layoutAllocs(t, Options{Layout: LayoutMapSet})
	colAllocs := layoutAllocs(t, Options{Layout: LayoutColumnar})
	colBitsetAllocs := layoutAllocs(t, Options{Layout: LayoutColumnar, TCAlgo: rtc.BitsetClosure})
	t.Logf("allocs per warm batch: map+bfs=%.1f columnar+bfs=%.1f columnar+bitset=%.1f",
		mapAllocs, colAllocs, colBitsetAllocs)
	if colAllocs > mapAllocs {
		t.Errorf("columnar layout allocates more than the map layout: %.1f > %.1f", colAllocs, mapAllocs)
	}
	if colBitsetAllocs > mapAllocs {
		t.Errorf("columnar+bitset allocates more than the map layout: %.1f > %.1f", colBitsetAllocs, mapAllocs)
	}
}

// Warm columnar batch evaluation must be close to allocation-free: the
// stamp sets, tuple buffers, builders and evaluators are all pooled, so
// the steady state allocates only the sealed result columns, the final
// Set materialisation and per-query planning scraps. The bound is
// deliberately loose (it is a regression tripwire, not a spec), but it
// is far below what any per-tuple or per-vertex allocation would cost.
func TestColumnarSteadyStateAllocations(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{})
	q := rpq.MustParse("d.(b.c)+.c")
	if _, err := e.Evaluate(q); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.EvaluateRel(q); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 60 {
		t.Errorf("warm columnar EvaluateRel allocates %.1f objects per query, want ≤ 60", allocs)
	}
}

// When the shared relation region's budget is exhausted, the engine
// falls back to its own overflow memo: sub-queries still evaluate once
// per engine (the seed's discipline), never once per batch unit.
func TestRelationOverflowMemo(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{})
	e.cache.relPairs.Store(relBudgetPairs) // exhaust the region up front

	for i := 0; i < 2; i++ {
		if _, err := e.Evaluate(rpq.MustParse("d.(b.c)+.c")); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Evaluate(rpq.MustParse("a.(b.c)+.c")); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.cache.RelLen(); got != 0 {
		t.Errorf("relation region retained %d entries despite exhausted budget", got)
	}
	e.version().subMu.Lock()
	overflow := len(e.version().subRels)
	e.version().subMu.Unlock()
	if overflow == 0 {
		t.Error("overflow memo empty: declined relations were not kept engine-locally")
	}
	// Each distinct sub-query sealed at most twice (the in-flight
	// singleflight plus one race-free local store): the second round of
	// queries must hit the overflow memo, so the relation region's miss
	// counter stops growing.
	missesAfterWarm := e.cache.Counters().RelMisses
	if _, err := e.Evaluate(rpq.MustParse("d.(b.c)+.c")); err != nil {
		t.Fatal(err)
	}
	if got := e.cache.Counters().RelMisses; got != missesAfterWarm {
		t.Errorf("warm query recomputed sub-relations: RelMisses %d → %d", missesAfterWarm, got)
	}
}
