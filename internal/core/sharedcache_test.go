package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"rtcshare/internal/pairs"
)

// TestSharedCacheSingleflight hammers one cache from many goroutines
// with overlapping keys and asserts the singleflight invariant: every
// distinct key's computation runs exactly once, and every caller
// observes that one value. Run under -race this also exercises the
// shard locking.
func TestSharedCacheSingleflight(t *testing.T) {
	const (
		goroutines = 32
		iterations = 200
		keys       = 10
	)
	cache := NewSharedCache()
	computes := make([]atomic.Int64, keys)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iterations; i++ {
				k := rng.Intn(keys)
				v, _, err := cache.GetOrCompute(0, fmt.Sprintf("key-%d", k), func() (any, error) {
					computes[k].Add(1)
					return k * k, nil
				})
				if err != nil {
					t.Errorf("GetOrCompute: %v", err)
					return
				}
				if got := v.(int); got != k*k {
					t.Errorf("key %d: got %d, want %d", k, got, k*k)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for k := range computes {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d computed %d times, want exactly 1", k, n)
		}
	}
	c := cache.Counters()
	if c.Misses != keys {
		t.Errorf("cache misses = %d, want %d (one per distinct key)", c.Misses, keys)
	}
	if want := int64(goroutines*iterations) - keys; c.Hits != want {
		t.Errorf("cache hits = %d, want %d", c.Hits, want)
	}
	if c.Entries != keys {
		t.Errorf("cache entries = %d, want %d", c.Entries, keys)
	}
}

// TestSharedCacheErrorRetry verifies that a failed computation is not
// cached: waiters of the failing flight see the error, and the next
// call retries.
func TestSharedCacheErrorRetry(t *testing.T) {
	cache := NewSharedCache()
	boom := errors.New("boom")
	var calls atomic.Int64

	_, computed, err := cache.GetOrCompute(0, "k", func() (any, error) {
		calls.Add(1)
		return nil, boom
	})
	if !computed || !errors.Is(err, boom) {
		t.Fatalf("first call: computed=%v err=%v, want computed=true err=boom", computed, err)
	}
	if _, ok := cache.Lookup(0, "k"); ok {
		t.Fatalf("failed computation was cached")
	}

	v, computed, err := cache.GetOrCompute(0, "k", func() (any, error) {
		calls.Add(1)
		return 42, nil
	})
	if err != nil || !computed || v.(int) != 42 {
		t.Fatalf("retry: v=%v computed=%v err=%v, want 42/true/nil", v, computed, err)
	}
	if calls.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2", calls.Load())
	}
}

// TestSharedCacheErrorRetryConcurrent repeats the retry property under
// contention: many goroutines race on a key whose computation fails the
// first time it runs; eventually all succeed and the successful value
// is computed exactly once.
func TestSharedCacheErrorRetryConcurrent(t *testing.T) {
	cache := NewSharedCache()
	var failed, succeeded atomic.Int64

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, _, err := cache.GetOrCompute(0, "k", func() (any, error) {
					if failed.CompareAndSwap(0, 1) {
						return nil, errors.New("transient")
					}
					succeeded.Add(1)
					return "ok", nil
				})
				if err != nil {
					continue // the transient failure; retry like a caller would
				}
				if v.(string) != "ok" {
					t.Errorf("got %v, want ok", v)
				}
				return
			}
		}()
	}
	wg.Wait()

	if succeeded.Load() != 1 {
		t.Fatalf("successful compute ran %d times, want exactly 1", succeeded.Load())
	}
}

// TestSharedCacheLookupInFlight verifies Lookup never blocks on a
// computation in progress.
func TestSharedCacheLookupInFlight(t *testing.T) {
	cache := NewSharedCache()
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = cache.GetOrCompute(0, "slow", func() (any, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	if _, ok := cache.Lookup(0, "slow"); ok {
		t.Errorf("Lookup returned an in-flight computation")
	}
	close(release)
	<-done
	if v, ok := cache.Lookup(0, "slow"); !ok || v.(int) != 1 {
		t.Errorf("Lookup after completion: %v, %v", v, ok)
	}
}

// TestSharedCacheReset verifies Reset drops entries and counters.
func TestSharedCacheReset(t *testing.T) {
	cache := NewSharedCache()
	for i := 0; i < 5; i++ {
		cache.GetOrCompute(0, fmt.Sprintf("k%d", i), func() (any, error) { return i, nil })
	}
	if cache.Len() != 5 {
		t.Fatalf("Len = %d, want 5", cache.Len())
	}
	cache.Reset()
	if cache.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", cache.Len())
	}
	if c := cache.Counters(); c.Hits != 0 || c.Misses != 0 {
		t.Fatalf("counters after Reset = %+v, want zero", c)
	}
}

// The relation region's admission budget: relations are delivered to
// callers regardless, but once the resident-pairs budget is exhausted
// new ones are not retained, so the region cannot grow without bound.
func TestRelationRegionBudget(t *testing.T) {
	cache := NewSharedCache()
	rel := pairs.RelationFromPairs(4, pairs.Pair{Src: 1, Dst: 2}, pairs.Pair{Src: 2, Dst: 3})

	val, computed, retained, err := cache.GetOrComputeRelation(0, "r1", func() (any, error) { return rel, nil })
	if err != nil || !computed || !retained || val.(*pairs.Relation) != rel {
		t.Fatalf("first admission: val=%v computed=%v retained=%v err=%v", val, computed, retained, err)
	}
	if cache.RelLen() != 1 || cache.relPairs.Load() != relationCost(rel) {
		t.Fatalf("after admission: RelLen=%d relPairs=%d want %d", cache.RelLen(), cache.relPairs.Load(), relationCost(rel))
	}

	// Exhaust the budget; the next distinct relation is computed and
	// returned but not retained, and a retry recomputes.
	cache.relPairs.Store(relBudgetPairs)
	computes := 0
	for i := 0; i < 2; i++ {
		val, computed, retained, err = cache.GetOrComputeRelation(0, "r2", func() (any, error) {
			computes++
			return rel, nil
		})
		if err != nil || !computed || retained || val.(*pairs.Relation) != rel {
			t.Fatalf("over-budget call %d: computed=%v retained=%v err=%v", i, computed, retained, err)
		}
	}
	if computes != 2 {
		t.Fatalf("over-budget relation was retained: %d computes, want 2", computes)
	}
	if cache.RelLen() != 1 {
		t.Fatalf("RelLen = %d, want 1 (only the admitted relation)", cache.RelLen())
	}

	// The admitted entry still hits, and reports itself retained.
	_, computed, retained, _ = cache.GetOrComputeRelation(0, "r1", func() (any, error) { return nil, nil })
	if computed || !retained {
		t.Fatalf("admitted relation should still be cached: computed=%v retained=%v", computed, retained)
	}

	cache.Reset()
	if cache.relPairs.Load() != 0 || cache.RelLen() != 0 {
		t.Fatal("Reset did not clear the relation region")
	}
}

// TestSharedCacheEpochRules pins the three epoch access rules and the
// AdvanceEpoch sweep, including relation-budget uncharging.
func TestSharedCacheEpochRules(t *testing.T) {
	cache := NewSharedCache()
	if _, _, err := cache.GetOrCompute(0, "k", func() (any, error) { return "v0", nil }); err != nil {
		t.Fatal(err)
	}
	rel := pairs.RelationFromPairs(4, pairs.Pair{Src: 1, Dst: 2}, pairs.Pair{Src: 2, Dst: 3})
	if _, _, _, err := cache.GetOrComputeRelation(0, "r", func() (any, error) { return rel, nil }); err != nil {
		t.Fatal(err)
	}
	if got := cache.relPairs.Load(); got != relationCost(rel) {
		t.Fatalf("relPairs = %d, want %d", got, relationCost(rel))
	}

	// Same epoch: hit, no recompute.
	v, computed, err := cache.GetOrCompute(0, "k", func() (any, error) { return "nope", nil })
	if err != nil || computed || v.(string) != "v0" {
		t.Fatalf("same-epoch access = (%v, %v, %v)", v, computed, err)
	}

	// AdvanceEpoch migrates the structure (as a patched value) and drops
	// the relation, uncharging its budget.
	newEpoch, relDeclined := cache.AdvanceEpoch(0, func(region CacheRegion, key string, val any) (any, bool) {
		if region == RegionStructure && key == "k" {
			return "v1", true
		}
		return nil, false
	})
	if newEpoch != 1 || cache.CurrentEpoch() != 1 {
		t.Fatalf("epoch after advance = %d / %d, want 1", newEpoch, cache.CurrentEpoch())
	}
	if relDeclined != 0 {
		t.Fatalf("relDeclined = %d, want 0 (the relation was dropped, not declined)", relDeclined)
	}
	if v, ok := cache.Lookup(1, "k"); !ok || v.(string) != "v1" {
		t.Fatalf("migrated entry = (%v, %v), want v1 at epoch 1", v, ok)
	}
	if _, ok := cache.Lookup(0, "k"); ok {
		t.Fatal("Lookup returned a value across epochs")
	}
	if cache.RelLen() != 0 || cache.relPairs.Load() != 0 {
		t.Fatalf("dropped relation still resident: len=%d pairs=%d", cache.RelLen(), cache.relPairs.Load())
	}

	// Straggler (older epoch than the resident entry): computes
	// privately and must not evict the newer entry.
	v, computed, err = cache.GetOrCompute(0, "k", func() (any, error) { return "vOld", nil })
	if err != nil || !computed || v.(string) != "vOld" {
		t.Fatalf("straggler access = (%v, %v, %v)", v, computed, err)
	}
	if v, ok := cache.Lookup(1, "k"); !ok || v.(string) != "v1" {
		t.Fatalf("straggler evicted the newer entry: (%v, %v)", v, ok)
	}

	// Stale entry (installed at an old epoch by an in-flight laggard) is
	// lazily evicted by a newer reader.
	if _, _, err := cache.GetOrCompute(0, "k2", func() (any, error) { return "old", nil }); err != nil {
		t.Fatal(err)
	}
	v, computed, err = cache.GetOrCompute(1, "k2", func() (any, error) { return "new", nil })
	if err != nil || !computed || v.(string) != "new" {
		t.Fatalf("stale-eviction access = (%v, %v, %v)", v, computed, err)
	}
	if se := cache.Counters().StaleEvictions; se != 1 {
		t.Fatalf("StaleEvictions = %d, want 1", se)
	}
	if ce := cache.Counters().CrossEpochHits; ce != 0 {
		t.Fatalf("CrossEpochHits = %d, want 0", ce)
	}

	// Provenance guard: a late install at an epoch OLDER than the
	// updater's pre-update epoch must never be migrated — the updater's
	// deltas describe only the fromEpoch graph, so a carry would smuggle
	// a multi-epoch-stale value into the new epoch.
	if _, _, err := cache.GetOrCompute(0, "k3", func() (any, error) { return "twoBehind", nil }); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.GetOrCompute(1, "k4", func() (any, error) { return "oneBehind", nil }); err != nil {
		t.Fatal(err)
	}
	if _, _ = cache.AdvanceEpoch(1, func(region CacheRegion, key string, val any) (any, bool) {
		if key == "k3" {
			t.Error("migrate offered an entry older than fromEpoch")
		}
		return val, true // carry everything offered
	}); cache.CurrentEpoch() != 2 {
		t.Fatalf("epoch = %d, want 2", cache.CurrentEpoch())
	}
	if _, ok := cache.Lookup(2, "k3"); ok {
		t.Fatal("multi-epoch-stale entry survived the sweep")
	}
	if v, ok := cache.Lookup(2, "k4"); !ok || v.(string) != "oneBehind" {
		t.Fatalf("fromEpoch entry not carried: (%v, %v)", v, ok)
	}
}
