package core

import (
	"math/rand"
	"sync"
	"testing"

	"rtcshare/internal/datagen"
	"rtcshare/internal/eval"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
)

// This file is the -race stress suite for dynamic updates: concurrent
// ApplyUpdates mutators interleaved with parallel readers on one shared
// cache. The correctness claim is linearizability at batch granularity:
// every EvaluateBatchParallel call returns results that all describe ONE
// graph epoch (never a torn mixture of pre- and post-update state), and
// no cached value is ever served across epochs.

// updateStressPlan pre-generates an RMAT graph, a deterministic sequence
// of guaranteed-effective insert batches, and the per-epoch reference
// oracles for a query list.
type updateStressPlan struct {
	g       *graph.Graph
	batches [][]GraphUpdate
	queries []rpq.Expr
	// oracle[k][i] is the reference result of queries[i] at epoch k
	// (after k update batches).
	oracle [][]*pairs.Set
}

func newUpdateStressPlan(t *testing.T, numBatches, batchSize int) *updateStressPlan {
	t.Helper()
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 64, Edges: 192, Labels: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	p := &updateStressPlan{g: g}
	for _, q := range []string{"l0+", "l0+.l1", "l1.l0*", "l2|l0.l0"} {
		p.queries = append(p.queries, rpq.MustParse(q))
	}

	// Effective-by-construction insert batches: every edge drawn is
	// absent from the running mutable, so each batch advances the epoch
	// by exactly one and epoch k's graph is the replay of k batches.
	rng := rand.New(rand.NewSource(97))
	m := graph.MutableFromGraph(g)
	labels := []string{"l0", "l1", "l2"}
	snapshot := func() *graph.Graph { return m.Freeze() }
	graphs := []*graph.Graph{snapshot()}
	for b := 0; b < numBatches; b++ {
		var batch []GraphUpdate
		for len(batch) < batchSize {
			src, dst := graph.VID(rng.Intn(64)), graph.VID(rng.Intn(64))
			label := labels[rng.Intn(len(labels))]
			if added, err := m.InsertEdge(src, label, dst); err != nil {
				t.Fatal(err)
			} else if added {
				batch = append(batch, InsertEdge(src, label, dst))
			}
		}
		p.batches = append(p.batches, batch)
		graphs = append(graphs, snapshot())
	}
	for _, gk := range graphs {
		var row []*pairs.Set
		for _, q := range p.queries {
			row = append(row, eval.Reference(gk, q))
		}
		p.oracle = append(p.oracle, row)
	}
	return p
}

// epochOf returns the oracle epoch the results jointly match, or -1 for
// a torn read.
func (p *updateStressPlan) epochOf(results []*pairs.Set) int {
	for k, row := range p.oracle {
		match := true
		for i := range p.queries {
			if !results[i].Equal(row[i]) {
				match = false
				break
			}
		}
		if match {
			return k
		}
	}
	return -1
}

func TestApplyUpdatesStressParallelReaders(t *testing.T) {
	const (
		numBatches = 6
		batchSize  = 8
		readers    = 4
		readRounds = 10
	)
	plan := newUpdateStressPlan(t, numBatches, batchSize)

	for _, opts := range []Options{{}, {Layout: LayoutMapSet}, {DisableIncremental: true}} {
		engine := New(plan.g, opts)

		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			seen      []int // epochs observed by readers, for monotonic sanity
			torn      int
			evalErrs  []error
			updateErr error
		)

		// Mutator: applies every batch, interleaving with the readers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, batch := range plan.batches {
				if _, err := engine.ApplyUpdates(batch); err != nil {
					updateErr = err
					return
				}
			}
		}()

		// Readers: parallel batch evaluations whose joint result must
		// equal exactly one epoch's oracle.
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for round := 0; round < readRounds; round++ {
					results, err := engine.EvaluateBatchParallel(plan.queries, 2)
					if err != nil {
						mu.Lock()
						evalErrs = append(evalErrs, err)
						mu.Unlock()
						return
					}
					k := plan.epochOf(results)
					mu.Lock()
					if k < 0 {
						torn++
					} else {
						seen = append(seen, k)
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()

		if updateErr != nil {
			t.Fatalf("%+v: ApplyUpdates: %v", opts, updateErr)
		}
		for _, err := range evalErrs {
			t.Errorf("%+v: evaluate: %v", opts, err)
		}
		if torn > 0 {
			t.Errorf("%+v: %d torn reads (results matching no single epoch oracle)", opts, torn)
		}
		if len(seen) == 0 {
			t.Fatalf("%+v: readers observed nothing", opts)
		}

		// After the dust settles the engine must sit at the final epoch
		// and answer with its oracle.
		final, err := engine.EvaluateBatchParallel(plan.queries, 2)
		if err != nil {
			t.Fatal(err)
		}
		if k := plan.epochOf(final); k != numBatches {
			t.Errorf("%+v: settled at oracle epoch %d, want %d", opts, k, numBatches)
		}

		// No cached value may ever have crossed an epoch.
		if cc := engine.Cache().Counters(); cc.CrossEpochHits != 0 {
			t.Errorf("%+v: CrossEpochHits = %d, want 0", opts, cc.CrossEpochHits)
		}
	}
}

// TestApplyUpdatesConcurrentMutators hammers one engine with several
// goroutines applying disjoint insert batches; updMu serialises them,
// every batch must land, and the final graph must contain every edge.
func TestApplyUpdatesConcurrentMutators(t *testing.T) {
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 48, Edges: 96, Labels: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	engine := New(g, Options{})

	const mutators = 4
	var wg sync.WaitGroup
	for mid := 0; mid < mutators; mid++ {
		wg.Add(1)
		go func(mid int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				// Disjoint per-mutator labels keep batches effective and
				// independent.
				label := "m" + string(rune('a'+mid))
				upd := []GraphUpdate{InsertEdge(graph.VID(i), label, graph.VID(i+1))}
				if _, err := engine.ApplyUpdates(upd); err != nil {
					t.Errorf("mutator %d: %v", mid, err)
					return
				}
				if _, err := engine.EvaluateQuery(label + "+"); err != nil {
					t.Errorf("mutator %d evaluate: %v", mid, err)
					return
				}
			}
		}(mid)
	}
	wg.Wait()

	final := engine.Graph()
	for mid := 0; mid < mutators; mid++ {
		label := "m" + string(rune('a'+mid))
		lid, ok := final.Dict().Lookup(label)
		if !ok {
			t.Fatalf("label %s missing from final graph", label)
		}
		for i := 0; i < 8; i++ {
			if !final.HasEdge(graph.VID(i), lid, graph.VID(i+1)) {
				t.Fatalf("final graph missing (%d,%s,%d)", i, label, i+1)
			}
		}
	}
	if cc := engine.Cache().Counters(); cc.CrossEpochHits != 0 {
		t.Fatalf("CrossEpochHits = %d, want 0", cc.CrossEpochHits)
	}
	assertOracle(t, engine, "ma+.mb?", "l0+")
}
