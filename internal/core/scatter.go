package core

import (
	"context"

	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
	"rtcshare/internal/tc"
)

// This file is the engine's scatter seam: the hook a sharded coordinator
// installs to route shared-structure and sub-relation work to the engine
// shard owning the labels involved, and the shard-side entry points that
// work arrives at. The seam sits exactly at the paper's decomposition
// boundary — a clause plan names its Pre, R+/R_G and Post components, and
// each component's evaluation is a self-contained unit keyed by canonical
// sub-query text — so scattering is a drop-in replacement for the local
// SharedCache probe, with the anchor join still running on the
// coordinator over the gathered sealed columns.
//
// Epoch discipline: every hook call carries the epoch of the version the
// coordinator pinned at evaluation start. The shard answers only when its
// own current epoch matches; otherwise it declines (ok=false) and the
// coordinator computes locally against its private cache, where the
// straggler rules of sharedcache.go already make an old-epoch computation
// correct and un-shared. Declines are therefore a graceful-degradation
// path, not an error path — the cluster-epoch barrier in internal/shard
// makes them rare, and the unbarriered fallbacks (the coalescer's
// error-path forks) stay correct through them.

// ScatterHook routes shared-structure and sub-relation evaluations to an
// external owner. A coordinator engine installs one via SetScatterHook;
// engine shards never carry one, so scattered work does not re-scatter
// (nested closures inside a scattered sub-query stay with the shard that
// owns the enclosing expression).
//
// Every method receives the graph epoch the calling evaluation is pinned
// to. Implementations must return ok=false when they cannot serve that
// epoch, in which case the caller computes locally. ctx may be nil
// (uncancellable evaluation).
type ScatterHook interface {
	// RTC returns the shared reduced-transitive-closure structure for r
	// at epoch. hit reports whether the owning shard already had it
	// cached (false: the shard computed it for this call).
	RTC(ctx context.Context, epoch uint64, r rpq.Expr) (structure *rtc.RTC, sum SharedSummary, hit, ok bool, err error)
	// FullClosure is RTC for the FullSharing strategy's heavyweight
	// closure R+_G.
	FullClosure(ctx context.Context, epoch uint64, r rpq.Expr) (closure *tc.Closure, sum SharedSummary, hit, ok bool, err error)
	// SubRelation evaluates sub-query q (a clause's Pre, Post or R_G
	// component) at epoch and returns it sealed. The relation is
	// immutable and memoised shard-side; the coordinator uses it without
	// copying.
	SubRelation(ctx context.Context, epoch uint64, q rpq.Expr) (rel *pairs.Relation, ok bool, err error)
	// StructureCached reports whether the shared structure for r already
	// exists at epoch on the owning shard — the planner's sunk-cost
	// probe, routed so cost-based planning sees the cluster's warm
	// structures, not the coordinator's (empty) structure region.
	StructureCached(epoch uint64, r rpq.Expr) bool
}

// SetScatterHook installs the scatter hook on this engine and every fork
// created afterwards. Like SetEvalHook it must be installed before the
// engine starts serving: the hook is copied to forks, not synchronised.
func (e *Engine) SetScatterHook(h ScatterHook) {
	e.scatter = h
}

// cancelCtx returns the context of the evaluation running on this
// engine, or nil when it is uncancellable — how the scatter probes
// propagate end-to-end cancellation across the shard boundary.
func (sh *engineShared) cancelCtx() context.Context {
	if sh.cancel == nil {
		return nil
	}
	return sh.cancel.ctx
}

// ScatterRTC is the shard-side entry point of ScatterHook.RTC: it
// computes (or fetches) the RTC for r against this engine's cache,
// declining when the engine's current epoch differs from the requested
// one or the engine does not cache. The work runs on a private fork with
// ctx attached — cancellable, panic-isolated, and folding its Stats back
// into this engine so per-shard accounting stays truthful.
func (e *Engine) ScatterRTC(ctx context.Context, epoch uint64, r rpq.Expr) (structure *rtc.RTC, sum SharedSummary, hit, ok bool, err error) {
	v := e.version()
	if v.epoch != epoch || !e.shouldCache() {
		return nil, SharedSummary{}, false, false, nil
	}
	worker := e.forkVersion(v)
	worker.setCancel(ctx)
	defer func() {
		rec := recover()
		e.absorb(worker)
		asPanicError(r.String(), rec, &err)
		if err != nil {
			structure, ok = nil, false
		}
	}()
	structure, sum, hit, err = worker.version().getRTCInfo(r)
	if err != nil {
		return nil, SharedSummary{}, false, false, err
	}
	return structure, sum, hit, true, nil
}

// ScatterFullClosure is ScatterRTC for the FullSharing closure.
func (e *Engine) ScatterFullClosure(ctx context.Context, epoch uint64, r rpq.Expr) (closure *tc.Closure, sum SharedSummary, hit, ok bool, err error) {
	v := e.version()
	if v.epoch != epoch || !e.shouldCache() {
		return nil, SharedSummary{}, false, false, nil
	}
	worker := e.forkVersion(v)
	worker.setCancel(ctx)
	defer func() {
		rec := recover()
		e.absorb(worker)
		asPanicError(r.String(), rec, &err)
		if err != nil {
			closure, ok = nil, false
		}
	}()
	closure, sum, hit, err = worker.version().getFullClosureInfo(r)
	if err != nil {
		return nil, SharedSummary{}, false, false, err
	}
	return closure, sum, hit, true, nil
}

// ScatterSubRelation is the shard-side entry point of
// ScatterHook.SubRelation: it evaluates q with this engine's own sharing
// pipeline (memoising the sealed relation in this engine's cache) and
// returns the frozen columns, declining on epoch mismatch exactly like
// ScatterRTC.
func (e *Engine) ScatterSubRelation(ctx context.Context, epoch uint64, q rpq.Expr) (rel *pairs.Relation, ok bool, err error) {
	v := e.version()
	if v.epoch != epoch || !e.shouldCache() {
		return nil, false, nil
	}
	worker := e.forkVersion(v)
	worker.setCancel(ctx)
	defer func() {
		rec := recover()
		e.absorb(worker)
		asPanicError(q.String(), rec, &err)
		if err != nil {
			rel, ok = nil, false
		}
	}()
	rel, err = worker.version().subEvaluateRel(q)
	if err != nil {
		return nil, false, err
	}
	return rel, true, nil
}

// ScatterStructureCached is the shard-side sunk-cost probe: it reports
// whether the shared structure for r exists in this engine's cache at
// the requested epoch. A mismatched epoch reports false — a structure
// the cluster cannot currently reach is not sunk cost.
func (e *Engine) ScatterStructureCached(epoch uint64, r rpq.Expr) bool {
	v := e.version()
	if v.epoch != epoch {
		return false
	}
	return v.sharedStructureCached(r)
}
