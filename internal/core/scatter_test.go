package core

import (
	"context"
	"sync/atomic"
	"testing"

	"rtcshare/internal/datagen"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
	"rtcshare/internal/tc"
)

// routeAllHook scatters every structure and sub-relation request to one
// owning engine — the smallest possible cluster, enough to drive the
// coordinator-side probes and the shard-side entry points from inside
// the package (internal/shard exercises the real partitioned router).
type routeAllHook struct {
	owner   *Engine
	decline atomic.Bool

	rtcN, fullN, relN, probeN atomic.Int64
}

func (h *routeAllHook) RTC(ctx context.Context, epoch uint64, r rpq.Expr) (*rtc.RTC, SharedSummary, bool, bool, error) {
	h.rtcN.Add(1)
	if h.decline.Load() {
		return nil, SharedSummary{}, false, false, nil
	}
	return h.owner.ScatterRTC(ctx, epoch, r)
}

func (h *routeAllHook) FullClosure(ctx context.Context, epoch uint64, r rpq.Expr) (*tc.Closure, SharedSummary, bool, bool, error) {
	h.fullN.Add(1)
	if h.decline.Load() {
		return nil, SharedSummary{}, false, false, nil
	}
	return h.owner.ScatterFullClosure(ctx, epoch, r)
}

func (h *routeAllHook) SubRelation(ctx context.Context, epoch uint64, q rpq.Expr) (*pairs.Relation, bool, error) {
	h.relN.Add(1)
	if h.decline.Load() {
		return nil, false, nil
	}
	return h.owner.ScatterSubRelation(ctx, epoch, q)
}

func (h *routeAllHook) StructureCached(epoch uint64, r rpq.Expr) bool {
	h.probeN.Add(1)
	if h.decline.Load() {
		return false
	}
	return h.owner.ScatterStructureCached(epoch, r)
}

var scatterQueries = []string{
	"l0.l2+", "l2+.l1", "(l0.l2)+", "l2*.l0", "l0.(l2)+.l1",
}

func scatterGraph(t *testing.T) *datagen.RMATConfig {
	t.Helper()
	return &datagen.RMATConfig{Vertices: 64, Edges: 256, Labels: 3, Seed: 11}
}

// mustMatch asserts the coordinator's sealed result equals the plain
// engine's, pair for pair.
func mustMatch(t *testing.T, q string, got, want *pairs.Relation) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: scattered %d pairs, plain %d", q, got.Len(), want.Len())
	}
	gs, ws := got.Sorted(), want.Sorted()
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("%s: scattered pair %d = %v, plain %v", q, i, gs[i], ws[i])
		}
	}
}

// TestScatterSeamRoutesAndMatches installs a route-everything hook and
// checks the coordinator's answers stay pair-for-pair identical to an
// unhooked engine while the structure and sub-relation work actually
// travels through the seam.
func TestScatterSeamRoutesAndMatches(t *testing.T) {
	g, err := datagen.RMAT(*scatterGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	plain := New(g, Options{})
	owner := New(g, Options{})
	coord := New(g, Options{Planner: PlannerCostBased})
	h := &routeAllHook{owner: owner}
	coord.SetScatterHook(h)

	for _, qs := range scatterQueries {
		q := rpq.MustParse(qs)
		want, err := plain.EvaluateRel(q)
		if err != nil {
			t.Fatalf("plain %s: %v", qs, err)
		}
		// One query rides a real context so the scatter probes carry a
		// cancellable ctx across the seam; the rest go uncancellable.
		var got *pairs.Relation
		if qs == scatterQueries[0] {
			got, _, err = coord.EvaluateRelTimedCtx(context.Background(), q, nil)
		} else {
			got, err = coord.EvaluateRel(q)
		}
		if err != nil {
			t.Fatalf("scattered %s: %v", qs, err)
		}
		mustMatch(t, qs, got, want)
	}
	if h.rtcN.Load() == 0 || h.relN.Load() == 0 {
		t.Fatalf("seam saw no traffic: rtc=%d rel=%d", h.rtcN.Load(), h.relN.Load())
	}

	// The sunk-cost probe: planning consults the hook, and the owning
	// engine reports the structures the evaluations above warmed.
	if _, _, err := coord.QueryCost(rpq.MustParse("l0.l2+")); err != nil {
		t.Fatalf("QueryCost over the seam: %v", err)
	}
	if h.probeN.Load() == 0 {
		t.Fatal("cost-based planning never consulted StructureCached")
	}
	if !owner.ScatterStructureCached(owner.Epoch(), rpq.MustParse("l2")) {
		t.Error("owner does not report the warmed structure for l2 as sunk")
	}
	if owner.ScatterStructureCached(owner.Epoch()+1, rpq.MustParse("l2")) {
		t.Error("a mismatched epoch must read as not-cached")
	}
}

// TestScatterSeamFullSharing drives the FullClosure leg of the seam.
func TestScatterSeamFullSharing(t *testing.T) {
	g, err := datagen.RMAT(*scatterGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Strategy: FullSharing}
	plain := New(g, opts)
	owner := New(g, opts)
	coord := New(g, opts)
	h := &routeAllHook{owner: owner}
	coord.SetScatterHook(h)

	for _, qs := range scatterQueries {
		q := rpq.MustParse(qs)
		want, err := plain.EvaluateRel(q)
		if err != nil {
			t.Fatalf("plain %s: %v", qs, err)
		}
		got, err := coord.EvaluateRel(q)
		if err != nil {
			t.Fatalf("scattered %s: %v", qs, err)
		}
		mustMatch(t, qs, got, want)
	}
	if h.fullN.Load() == 0 {
		t.Fatal("FullSharing coordinator never scattered a full closure")
	}
}

// TestScatterDeclineFallsBackLocal covers the graceful-degradation
// path: a hook that declines everything (the barrier raced) must leave
// the coordinator correct via local computation, and the shard-side
// entry points must decline on their own epoch and cache guards.
func TestScatterDeclineFallsBackLocal(t *testing.T) {
	g, err := datagen.RMAT(*scatterGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	plain := New(g, Options{})
	owner := New(g, Options{})
	coord := New(g, Options{})
	h := &routeAllHook{owner: owner}
	h.decline.Store(true)
	coord.SetScatterHook(h)

	for _, qs := range scatterQueries {
		q := rpq.MustParse(qs)
		want, err := plain.EvaluateRel(q)
		if err != nil {
			t.Fatalf("plain %s: %v", qs, err)
		}
		got, err := coord.EvaluateRel(q)
		if err != nil {
			t.Fatalf("declined %s: %v", qs, err)
		}
		mustMatch(t, qs, got, want)
	}
	if h.rtcN.Load() == 0 {
		t.Fatal("declining hook was never probed")
	}

	// Shard-side epoch guard: an owner whose epoch ran ahead declines
	// instead of serving a structure from the wrong graph.
	ups := []GraphUpdate{InsertEdge(0, "l2", 1), InsertEdge(1, "l2", 2), InsertEdge(2, "l2", 3)}
	if _, err := owner.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	if owner.Epoch() == 0 {
		t.Fatal("update batch was not effective; the epoch never advanced")
	}
	r := rpq.MustParse("l2")
	if _, _, _, ok, err := owner.ScatterRTC(nil, 0, r); ok || err != nil {
		t.Fatalf("ScatterRTC at a stale epoch: ok=%v err=%v, want decline", ok, err)
	}
	if _, _, _, ok, err := owner.ScatterFullClosure(nil, 0, r); ok || err != nil {
		t.Fatalf("ScatterFullClosure at a stale epoch: ok=%v err=%v, want decline", ok, err)
	}
	if _, ok, err := owner.ScatterSubRelation(nil, 0, r); ok || err != nil {
		t.Fatalf("ScatterSubRelation at a stale epoch: ok=%v err=%v, want decline", ok, err)
	}

	// Cache guard: a non-caching engine has nothing shareable to serve.
	noCache := New(g, Options{DisableCache: true})
	if _, _, _, ok, err := noCache.ScatterRTC(nil, 0, r); ok || err != nil {
		t.Fatalf("ScatterRTC on a non-caching engine: ok=%v err=%v, want decline", ok, err)
	}
}
