package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
)

// EvaluateBatchParallel evaluates a query batch across worker
// goroutines, sharing one SharedCache: the parallel form of the paper's
// multiple-RPQ evaluation. Each worker is a Fork of the receiver, so the
// closure structures (RTCs for RTCSharing, full closures for
// FullSharing) are computed once per distinct sub-query R no matter how
// many workers race to need them — the singleflight in the cache makes
// the losers wait instead of recompute. Per-worker Stats accumulate
// privately and are folded into the receiver's Stats before the call
// returns, so the timing split and cache counters aggregate the whole
// batch race-free.
//
// Results are returned in input order. workers ≤ 0 uses GOMAXPROCS;
// one worker (or a one-query batch) degenerates to EvaluateSet. The
// first error aborts the batch and is returned; queries already
// completed are discarded.
//
// For NoSharing the workers share nothing, by definition of the
// baseline — the batch still parallelises, each worker paying the full
// per-query cost, which is exactly the NoSharing wall-clock a fair
// comparison needs.
//
// The whole batch is pinned to the graph version current when the call
// starts: every worker forks onto that one version, so even if
// ApplyUpdates lands mid-batch, all results of one call describe a
// single graph epoch (the -race update stress test asserts exactly
// this).
func (e *Engine) EvaluateBatchParallel(qs []rpq.Expr, workers int) ([]*pairs.Set, error) {
	results, _, err := evalBatchPinned(e, nil, qs, workers, nil, (*Engine).Evaluate)
	return results, err
}

// EvaluateBatchParallelRel is EvaluateBatchParallel in the executor's
// native sealed form, additionally returning the graph epoch the whole
// batch was pinned to. This is the batch demux hook of the query
// service's coalescer: the server evaluates one deduplicated batch,
// fans the sealed relations back out to the waiting requests, and
// stamps every response with the one epoch the batch guarantee already
// provides — all results of one call describe a single graph version.
func (e *Engine) EvaluateBatchParallelRel(qs []rpq.Expr, workers int) ([]*pairs.Relation, uint64, error) {
	return evalBatchPinned(e, nil, qs, workers, nil, (*Engine).EvaluateRel)
}

// EvaluateBatchParallelRelTimed is EvaluateBatchParallelRel with
// per-query stage attribution: timers[i], when non-nil, receives the
// engine-side stage breakdown (plan / closure-build / join / seal /
// other) of qs[i]. A worker evaluates one query at a time on a private
// fork, so attaching the query's timer to the fork for the duration of
// that evaluation gives every timer exactly one writer — no allocation
// and no synchronisation beyond the Stats mutex the hot path already
// takes. timers may be nil (untimed) but must otherwise have len(qs).
func (e *Engine) EvaluateBatchParallelRelTimed(qs []rpq.Expr, workers int, timers []*StageTimer) ([]*pairs.Relation, uint64, error) {
	return e.EvaluateBatchParallelRelCtx(nil, qs, workers, timers)
}

// EvaluateBatchParallelRelCtx is EvaluateBatchParallelRelTimed with
// cooperative cancellation: ctx (when non-nil) is attached to every
// worker fork, and each evaluation polls it at the engine's amortized
// checkpoints — closure-build loops, batch-unit joins, clause
// boundaries — so a batch whose clients have all walked away stops
// burning CPU within one checkpoint interval. The first ctx error
// aborts the batch and is returned. ctx may be nil (uncancellable) and
// timers may be nil (untimed); this is the coalescer's batch demux
// entry point.
func (e *Engine) EvaluateBatchParallelRelCtx(ctx context.Context, qs []rpq.Expr, workers int, timers []*StageTimer) ([]*pairs.Relation, uint64, error) {
	if timers != nil && len(timers) != len(qs) {
		timers = nil
	}
	return evalBatchPinned(e, ctx, qs, workers, timers, (*Engine).EvaluateRel)
}

// evalBatchPinned is the shared skeleton of the parallel batch
// evaluators: pin one graph version, fan the queries over forked
// workers (each fork pinned to that version, with ctx attached when
// cancellable), fold the workers' Stats back into the receiver, and
// return the results in input order plus the pinned epoch. A panic
// while evaluating one query is recovered into a *QueryPanicError and
// aborts the batch like any other error — the worker goroutine, and
// with it the serving daemon, survives.
func evalBatchPinned[T any](e *Engine, ctx context.Context, qs []rpq.Expr, workers int, timers []*StageTimer, eval func(*Engine, rpq.Expr) (T, error)) ([]T, uint64, error) {
	n := len(qs)
	pinned := e.version()
	if n == 0 {
		return nil, pinned.epoch, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, pinned.epoch, err
		}
	}
	// evalTimed runs one query on a worker fork with that query's stage
	// timer (if any) attached for the duration. The fork is private and
	// evaluates one query at a time, so the timer has a single writer;
	// the deferred detach keeps a panicking query from leaking its timer
	// onto the fork's next evaluation.
	evalTimed := func(worker *Engine, i int) (res T, err error) {
		timed := timers != nil && timers[i] != nil
		if timed {
			worker.setStages(timers[i])
		}
		defer func() {
			// recover must run directly in this deferred function; the
			// helper then folds a non-nil panic value into err.
			r := recover()
			if timed {
				worker.setStages(nil)
			}
			asPanicError(qs[i].String(), r, &err)
		}()
		return eval(worker, qs[i])
	}
	newWorker := func() *Engine {
		worker := e.forkVersion(pinned)
		worker.setCancel(ctx)
		return worker
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial fallback, still pinned to one version via a fork.
		worker := newWorker()
		out := make([]T, n)
		for i := range qs {
			res, err := evalTimed(worker, i)
			if err != nil {
				e.absorb(worker)
				return nil, pinned.epoch, err
			}
			out[i] = res
		}
		e.absorb(worker)
		return out, pinned.epoch, nil
	}

	var (
		results = make([]T, n)
		errs    = make([]error, workers)
		engines = make([]*Engine, workers)
		next    atomic.Int64
		aborted atomic.Bool
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		engines[w] = newWorker()
		wg.Add(1)
		go func(w int, worker *Engine) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || aborted.Load() {
					return
				}
				res, err := evalTimed(worker, i)
				if err != nil {
					errs[w] = err
					aborted.Store(true)
					return
				}
				results[i] = res
			}
		}(w, engines[w])
	}
	wg.Wait()

	for _, worker := range engines {
		e.absorb(worker)
	}
	for _, err := range errs {
		if err != nil {
			return nil, pinned.epoch, err
		}
	}
	return results, pinned.epoch, nil
}

// EvaluateQueriesParallel parses a query batch and evaluates it with
// EvaluateBatchParallel.
func (e *Engine) EvaluateQueriesParallel(queries []string, workers int) ([]*pairs.Set, error) {
	qs := make([]rpq.Expr, len(queries))
	for i, q := range queries {
		expr, err := rpq.Parse(q)
		if err != nil {
			return nil, err
		}
		qs[i] = expr
	}
	return e.EvaluateBatchParallel(qs, workers)
}

// absorb folds a finished worker's stats and summaries into e.
func (e *Engine) absorb(worker *Engine) {
	worker.mu.Lock()
	ws := worker.stats
	wsum := worker.summaries
	worker.mu.Unlock()

	e.mu.Lock()
	e.stats.Add(ws)
	for k, s := range wsum {
		e.summaries[k] = s
	}
	e.mu.Unlock()
}
