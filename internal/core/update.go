package core

import (
	"fmt"
	"time"

	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
)

// UpdateOp is the kind of one GraphUpdate.
type UpdateOp int

const (
	// OpInsertEdge adds the labeled edge (Src, Label, Dst); inserting an
	// edge that already exists is an effective no-op.
	OpInsertEdge UpdateOp = iota
	// OpDeleteEdge removes the labeled edge; deleting a missing edge
	// (including one with an unknown label) is an effective no-op.
	OpDeleteEdge
)

func (op UpdateOp) String() string {
	switch op {
	case OpInsertEdge:
		return "insert"
	case OpDeleteEdge:
		return "delete"
	}
	return fmt.Sprintf("UpdateOp(%d)", int(op))
}

// GraphUpdate is one edge mutation of the engine's graph.
type GraphUpdate struct {
	Op    UpdateOp
	Src   graph.VID
	Label string
	Dst   graph.VID
}

// InsertEdge returns an insert update.
func InsertEdge(src graph.VID, label string, dst graph.VID) GraphUpdate {
	return GraphUpdate{Op: OpInsertEdge, Src: src, Label: label, Dst: dst}
}

// DeleteEdge returns a delete update.
func DeleteEdge(src graph.VID, label string, dst graph.VID) GraphUpdate {
	return GraphUpdate{Op: OpDeleteEdge, Src: src, Label: label, Dst: dst}
}

// UpdateResult reports what one ApplyUpdates batch did: the new graph
// epoch, the effective edge changes, and the fate of every cached
// structure and relation that existed at the old epoch — the
// carried/patched/dropped split is the observable form of the §9
// maintenance policy, and the updates benchmark reports it.
type UpdateResult struct {
	// Epoch is the graph epoch after the batch (unchanged if the batch
	// was wholly ineffective).
	Epoch uint64
	// Inserted / Deleted count the effective edge changes (no-ops
	// excluded).
	Inserted, Deleted int

	// Carried counts closure structures moved to the new epoch untouched
	// (their sub-query mentions no updated label); Patched counts
	// structures maintained incrementally (single-label closure bodies
	// under insert-only deltas); Dropped counts structures invalidated
	// for recompute-on-demand (deletes and multi-label hard cases — the
	// fallback half of the policy).
	Carried, Patched, Dropped int
	// RelCarried / RelDropped are the same split for cached sub-query
	// relations (relations are never patched: rebuilding one from the
	// new graph costs a single sub-query evaluation).
	RelCarried, RelDropped int

	// MigrateTime is the wall-clock spent sweeping and patching the
	// cache; FreezeTime the wall-clock spent freezing the new graph
	// version.
	MigrateTime, FreezeTime time.Duration
}

// ApplyUpdates applies a batch of edge updates to the engine's graph:
// it mutates the engine's live mutable graph, freezes a new immutable
// graph version, advances the SharedCache to a new epoch — deciding for
// every cached structure whether to carry it unchanged, patch it
// incrementally or drop it — and atomically swaps the engine onto the
// new version. Queries already in flight finish against the old version
// (and its structures, which the epoch rules keep them from mixing with
// new ones); queries started after the swap see the new graph.
//
// The batch is validated before anything mutates: an out-of-range
// endpoint or unknown op rejects the whole batch. A batch with no
// effective change (all no-ops) leaves the epoch alone.
//
// ApplyUpdates is serialised per engine; it may run concurrently with
// any number of evaluations.
func (e *Engine) ApplyUpdates(updates []GraphUpdate) (UpdateResult, error) {
	e.updMu.Lock()
	defer e.updMu.Unlock()

	v := e.version()
	if e.live == nil {
		e.live = graph.MutableFromGraph(v.g)
	}
	if err := validateUpdates(updates, graph.VID(e.live.NumVertices())); err != nil {
		return UpdateResult{Epoch: v.epoch}, err
	}

	// Apply, keeping only the effective deltas: the migration below
	// reasons about what actually changed per label.
	res := UpdateResult{Epoch: v.epoch}
	inserted := make(map[string][]pairs.Pair)
	deleted := make(map[string]bool)
	for _, u := range updates {
		switch u.Op {
		case OpInsertEdge:
			added, err := e.live.InsertEdge(u.Src, u.Label, u.Dst)
			if err != nil {
				return res, err
			}
			if added {
				inserted[u.Label] = append(inserted[u.Label], pairs.Pair{Src: u.Src, Dst: u.Dst})
				res.Inserted++
			}
		case OpDeleteEdge:
			removed, err := e.live.DeleteEdge(u.Src, u.Label, u.Dst)
			if err != nil {
				return res, err
			}
			if removed {
				deleted[u.Label] = true
				res.Deleted++
			}
		}
	}
	if res.Inserted+res.Deleted == 0 {
		return res, nil
	}

	t0 := time.Now()
	newG := e.live.Freeze()
	res.FreezeTime = time.Since(t0)

	touched := make(map[string]bool, len(inserted)+len(deleted))
	for l := range inserted {
		touched[l] = true
	}
	for l := range deleted {
		touched[l] = true
	}

	t0 = time.Now()
	// Only entries computed at this engine's pre-update epoch are
	// migrated — they are the ones the effective deltas describe;
	// anything older (straggler installs, diverged engines) is dropped
	// by the sweep itself.
	newEpoch, relDeclined := e.cache.AdvanceEpoch(v.epoch, func(region CacheRegion, key string, val any) (any, bool) {
		return e.migrateEntry(&res, region, key, val, touched, inserted, deleted)
	})
	// Relations the sweep could not actually retain (budget decline, or
	// a fresh new-epoch computation won the slot) move from carried to
	// dropped so the reported split matches what is resident.
	res.RelCarried -= relDeclined
	res.RelDropped += relDeclined
	res.MigrateTime = time.Since(t0)
	res.Epoch = newEpoch
	e.ver.Store(newEngineVersion(&e.engineShared, newG, newEpoch))
	return res, nil
}

// ValidateUpdates checks a batch against the engine's current vertex
// space and label rules without mutating anything — the same validation
// ApplyUpdates performs before touching the graph, exposed so a
// durability layer can reject a bad batch before logging it (the
// log-before-apply discipline of store.Persistent). The vertex space is
// fixed for an engine's lifetime, so a batch that validates now also
// validates inside a later ApplyUpdates.
func (e *Engine) ValidateUpdates(updates []GraphUpdate) error {
	return validateUpdates(updates, graph.VID(e.version().g.NumVertices()))
}

// validateUpdates rejects unknown ops, out-of-range endpoints and (for
// inserts) invalid labels. Insert labels are validated up front so a
// bad label rejects the whole batch before anything mutates (batch
// atomicity); deletes stay permissive — an uninsertable label is simply
// never present.
func validateUpdates(updates []GraphUpdate, n graph.VID) error {
	for i, u := range updates {
		if u.Op != OpInsertEdge && u.Op != OpDeleteEdge {
			return fmt.Errorf("core: update %d: unknown op %v", i, u.Op)
		}
		if u.Src < 0 || u.Src >= n || u.Dst < 0 || u.Dst >= n {
			return fmt.Errorf("core: update %d: edge (%d,%q,%d) out of range [0,%d)", i, u.Src, u.Label, u.Dst, n)
		}
		if u.Op == OpInsertEdge {
			if err := graph.ValidateLabel(u.Label); err != nil {
				return fmt.Errorf("core: update %d: %w", i, err)
			}
		}
	}
	return nil
}

// migrateEntry decides one cached entry's fate across an epoch advance.
// It runs outside the cache's shard locks (patching is O(closure
// pairs)) but under updMu; it must not call back into the cache.
func (e *Engine) migrateEntry(res *UpdateResult, region CacheRegion, key string, val any, touched map[string]bool, inserted map[string][]pairs.Pair, deleted map[string]bool) (any, bool) {
	switch region {
	case RegionRelation:
		// A memoised sub-query relation survives iff its expression
		// mentions no updated label; otherwise the next use re-evaluates
		// it against the new graph (one sub-query — no closure work).
		expr, err := rpq.Parse(key)
		if err == nil && labelsDisjoint(expr, touched) {
			res.RelCarried++
			return val, true
		}
		res.RelDropped++
		return nil, false

	case RegionStructure:
		switch sv := val.(type) {
		case *rtcValue:
			expr, err := rpq.Parse(sv.summary.R)
			if err != nil {
				break
			}
			if labelsDisjoint(expr, touched) {
				res.Carried++
				return val, true
			}
			if delta, ok := e.structureDelta(expr, inserted, deleted); ok {
				patched := sv.structure.InsertEdges(delta)
				res.Patched++
				return &rtcValue{
					structure: patched,
					summary: SharedSummary{
						R:                   sv.summary.R,
						SharedPairs:         patched.NumSharedPairs(),
						ReducedVertices:     patched.NumReducedVertices(),
						EdgeReducedVertices: patched.NumActiveVertices(),
						AvgSCCSize:          patched.Components().AverageSize(),
					},
				}, true
			}
		case *fullValue:
			expr, err := rpq.Parse(sv.summary.R)
			if err != nil {
				break
			}
			if labelsDisjoint(expr, touched) {
				res.Carried++
				return val, true
			}
			if delta, ok := e.structureDelta(expr, inserted, deleted); ok {
				patched := sv.closure.InsertEdges(delta)
				active := patched.NumActive()
				res.Patched++
				return &fullValue{
					closure: patched,
					summary: SharedSummary{
						R:                   sv.summary.R,
						SharedPairs:         patched.NumPairs(),
						ReducedVertices:     active,
						EdgeReducedVertices: active,
					},
				}, true
			}
		}
	}
	res.Dropped++
	return nil, false
}

// structureDelta maps the update batch onto G_R edge inserts for a
// closure body R, reporting whether incremental maintenance applies.
// The tractable case is a single-label R (by far the common closure
// body: R_G is exactly the label's edge relation, so a graph edge
// insert IS a G_R edge insert — reversed for an inverse label) with no
// effective delete of that label; everything else — deletes, and
// multi-label bodies whose R_G delta would need re-evaluating R — falls
// back to dropping the structure.
func (e *Engine) structureDelta(r rpq.Expr, inserted map[string][]pairs.Pair, deleted map[string]bool) ([]pairs.Pair, bool) {
	if e.opts.DisableIncremental {
		return nil, false
	}
	lbl, isLabel := r.(rpq.Label)
	if !isLabel || deleted[lbl.Name] {
		return nil, false
	}
	ins := inserted[lbl.Name]
	if !lbl.Inverse {
		return ins, true
	}
	rev := make([]pairs.Pair, len(ins))
	for i, p := range ins {
		rev[i] = pairs.Pair{Src: p.Dst, Dst: p.Src}
	}
	return rev, true
}

// labelsDisjoint reports whether none of expr's labels were touched by
// the update batch.
func labelsDisjoint(expr rpq.Expr, touched map[string]bool) bool {
	for _, l := range rpq.Labels(expr) {
		if touched[l] {
			return false
		}
	}
	return true
}
