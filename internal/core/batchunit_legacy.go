package core

import (
	"time"

	"rtcshare/internal/eval"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
	"rtcshare/internal/tc"
)

// This file preserves the seed's batch-unit executor verbatim as the
// LayoutMapSet baseline: sub-query results are map-backed pairs.Set
// values, re-bucketed into flat per-vertex runs on every call
// (bucketBySrc/bucketByDst), stamp sets are allocated per join, and
// results accumulate through hash inserts. The columnar executor in
// batchunit.go replaces all of that on the default layout; this one
// exists so the rpqbench layout experiment can measure exactly what the
// replacement bought, on identical plans and identical semantics.

// srcBuckets groups the pairs of a relation by one side: bucketed by
// start vertex, the dsts of src v are flat[offsets[v]:offsets[v+1]];
// bucketed by end vertex (bucketByDst), the roles swap.
type srcBuckets struct {
	offsets []int32
	flat    []graph.VID
}

func bucketBySrc(numVertices int, rel *pairs.Set) srcBuckets {
	return bucketPairs(numVertices, rel, false)
}

// bucketByDst groups a relation by end vertex: partners(v) returns the
// start vertices of pairs ending at v. It is the index the backward join
// walks Pre_G through.
func bucketByDst(numVertices int, rel *pairs.Set) srcBuckets {
	return bucketPairs(numVertices, rel, true)
}

func bucketPairs(numVertices int, rel *pairs.Set, byDst bool) srcBuckets {
	offsets := make([]int32, numVertices+1)
	rel.Each(func(src, dst graph.VID) bool {
		if byDst {
			offsets[dst+1]++
		} else {
			offsets[src+1]++
		}
		return true
	})
	for v := 0; v < numVertices; v++ {
		offsets[v+1] += offsets[v]
	}
	flat := make([]graph.VID, rel.Len())
	cursor := make([]int32, numVertices)
	rel.Each(func(src, dst graph.VID) bool {
		key, val := src, dst
		if byDst {
			key, val = dst, src
		}
		flat[offsets[key]+cursor[key]] = val
		cursor[key]++
		return true
	})
	return srcBuckets{offsets: offsets, flat: flat}
}

func (b srcBuckets) dsts(v graph.VID) []graph.VID {
	return b.flat[b.offsets[v]:b.offsets[v+1]]
}

// evalBatchUnitMap is Algorithm 2 over the map layout — the seed's
// EvalBatchUnit, re-bucketing Pre_G from its hash map on every call.
func (e *engineVersion) evalBatchUnitMap(preG *pairs.Set, structure *rtc.RTC, typ rpq.ClosureType, post rpq.Expr) (*pairs.Set, error) {
	joinStart := time.Now()

	buckets := bucketBySrc(e.g.NumVertices(), preG)
	numComps := structure.NumReducedVertices()
	seen7 := newStampSet(numComps) // the ResEq7 union, per v_i
	seen8 := newStampSet(numComps) // the ResEq8 union, per v_i

	var resEq9 []pairs.Pair
	for vi := graph.VID(0); int(vi) < e.g.NumVertices(); vi++ {
		vjs := buckets.dsts(vi)
		if len(vjs) == 0 {
			continue
		}
		seen7.reset()
		seen8.reset()
		if typ == rpq.ClosureStar {
			for _, vj := range vjs {
				resEq9 = append(resEq9, pairs.Pair{Src: vi, Dst: vj})
			}
		}
		for _, vj := range vjs {
			sj := structure.CompOf(vj)
			if sj < 0 {
				continue
			}
			if !seen7.add(sj) {
				continue
			}
			for _, sk := range structure.ReachableFrom(sj) {
				if !seen8.add(int32(sk)) {
					continue
				}
				for _, vk := range structure.Members(int32(sk)) {
					resEq9 = append(resEq9, pairs.Pair{Src: vi, Dst: vk})
				}
			}
		}
	}
	e.addPreJoin(time.Since(joinStart))

	return e.joinPostMap(resEq9, post)
}

// evalBatchUnitFullMap is the seed's EvalBatchUnitFull: the pair-level
// FullSharing join over the map layout.
func (e *engineVersion) evalBatchUnitFullMap(preG *pairs.Set, closure *tc.Closure, typ rpq.ClosureType, post rpq.Expr) (*pairs.Set, error) {
	joinStart := time.Now()

	buckets := bucketBySrc(e.g.NumVertices(), preG)
	seenV := newStampSet(e.g.NumVertices())

	var resEq9 []pairs.Pair
	for vi := graph.VID(0); int(vi) < e.g.NumVertices(); vi++ {
		vjs := buckets.dsts(vi)
		if len(vjs) == 0 {
			continue
		}
		seenV.reset()
		if typ == rpq.ClosureStar {
			for _, vj := range vjs {
				if seenV.add(vj) {
					resEq9 = append(resEq9, pairs.Pair{Src: vi, Dst: vj})
				}
			}
		}
		for _, vj := range vjs {
			for _, vk := range closure.From(vj) {
				if seenV.add(vk) {
					resEq9 = append(resEq9, pairs.Pair{Src: vi, Dst: vk})
				}
			}
		}
	}
	e.addPreJoin(time.Since(joinStart))

	return e.joinPostMap(resEq9, post)
}

// evalBatchUnitBackwardMap is the seed's EvalBatchUnitBackward over the
// map layout.
func (e *engineVersion) evalBatchUnitBackwardMap(preG *pairs.Set, structure *rtc.RTC, typ rpq.ClosureType, postG *pairs.Set) (*pairs.Set, error) {
	joinStart := time.Now()

	buckets := bucketByDst(e.g.NumVertices(), postG)
	numComps := structure.NumReducedVertices()
	seen7 := newStampSet(numComps)
	seen8 := newStampSet(numComps)

	var resEq9 []pairs.Pair
	for vl := graph.VID(0); int(vl) < e.g.NumVertices(); vl++ {
		vks := buckets.dsts(vl)
		if len(vks) == 0 {
			continue
		}
		seen7.reset()
		seen8.reset()
		if typ == rpq.ClosureStar {
			for _, vk := range vks {
				resEq9 = append(resEq9, pairs.Pair{Src: vl, Dst: vk})
			}
		}
		for _, vk := range vks {
			sk := structure.CompOf(vk)
			if sk < 0 {
				continue
			}
			if !seen7.add(sk) {
				continue
			}
			for _, sj := range structure.ReachableInto(sk) {
				if !seen8.add(int32(sj)) {
					continue
				}
				for _, vj := range structure.Members(int32(sj)) {
					resEq9 = append(resEq9, pairs.Pair{Src: vl, Dst: vj})
				}
			}
		}
	}
	e.addPreJoin(time.Since(joinStart))

	return e.joinPreBackwardMap(resEq9, preG)
}

// evalBatchUnitFullBackwardMap is the seed's EvalBatchUnitFullBackward
// over the map layout.
func (e *engineVersion) evalBatchUnitFullBackwardMap(preG *pairs.Set, closure *tc.Closure, typ rpq.ClosureType, postG *pairs.Set) (*pairs.Set, error) {
	joinStart := time.Now()

	buckets := bucketByDst(e.g.NumVertices(), postG)
	seenV := newStampSet(e.g.NumVertices())

	var resEq9 []pairs.Pair
	for vl := graph.VID(0); int(vl) < e.g.NumVertices(); vl++ {
		vks := buckets.dsts(vl)
		if len(vks) == 0 {
			continue
		}
		seenV.reset()
		if typ == rpq.ClosureStar {
			for _, vk := range vks {
				if seenV.add(vk) {
					resEq9 = append(resEq9, pairs.Pair{Src: vl, Dst: vk})
				}
			}
		}
		for _, vk := range vks {
			for _, vj := range closure.Into(vk) {
				if seenV.add(vj) {
					resEq9 = append(resEq9, pairs.Pair{Src: vl, Dst: vj})
				}
			}
		}
	}
	e.addPreJoin(time.Since(joinStart))

	return e.joinPreBackwardMap(resEq9, preG)
}

// joinPreBackwardMap finishes a backward batch unit on the map layout,
// re-bucketing Pre_G by end vertex per call.
func (e *engineVersion) joinPreBackwardMap(resEq9 []pairs.Pair, preG *pairs.Set) (*pairs.Set, error) {
	t0 := time.Now()
	defer func() { e.addRemainder(time.Since(t0)) }()

	preByDst := bucketByDst(e.g.NumVertices(), preG)
	resEq10 := pairs.NewSet()
	seenVi := newStampSet(e.g.NumVertices())
	for i := 0; i < len(resEq9); {
		vl := resEq9[i].Src
		seenVi.reset()
		for ; i < len(resEq9) && resEq9[i].Src == vl; i++ {
			vj := resEq9[i].Dst
			for _, vi := range preByDst.dsts(vj) {
				if seenVi.add(vi) {
					resEq10.Add(vi, vl)
				}
			}
		}
	}
	return resEq10, nil
}

// joinPostMap finishes a forward batch unit on the map layout: every
// result pair lands through a hash insert.
func (e *engineVersion) joinPostMap(resEq9 []pairs.Pair, post rpq.Expr) (*pairs.Set, error) {
	t0 := time.Now()
	defer func() { e.addRemainder(time.Since(t0)) }()

	resEq10 := pairs.NewSet()
	_, postIsEps := post.(rpq.Epsilon)
	var (
		evalPost *eval.Evaluator
		ends     map[graph.VID][]graph.VID
		seenVl   = newStampSet(e.g.NumVertices())
	)
	if !postIsEps {
		var evalKey string
		evalPost, evalKey = e.acquireEvaluator(post)
		defer e.releaseEvaluator(evalKey, evalPost)
		ends = make(map[graph.VID][]graph.VID)
	}

	for i := 0; i < len(resEq9); {
		vi := resEq9[i].Src
		seenVl.reset()
		for ; i < len(resEq9) && resEq9[i].Src == vi; i++ {
			vk := resEq9[i].Dst
			if postIsEps {
				if seenVl.add(vk) {
					resEq10.Add(vi, vk)
				}
				continue
			}
			vkEnds, ok := ends[vk]
			if !ok {
				vkEnds = evalPost.ReachFrom(vk)
				ends[vk] = vkEnds
			}
			for _, vl := range vkEnds {
				if seenVl.add(vl) {
					resEq10.Add(vi, vl)
				}
			}
		}
	}
	return resEq10, nil
}
