package core

import (
	"math/rand"
	"testing"

	"rtcshare/internal/datagen"
	"rtcshare/internal/eval"
	"rtcshare/internal/fixtures"
	"rtcshare/internal/pairs"
	"rtcshare/internal/plan"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
	"rtcshare/internal/tc"
)

// The backward joins must produce exactly the forward joins' results on
// every batch unit: same Pre, R, Type, Post — only the drive direction
// differs. This exercises EvalBatchUnitBackward/EvalBatchUnitFullBackward
// directly, independent of whether the cost-based planner happens to
// pick them.
func TestBackwardJoinMatchesForward(t *testing.T) {
	labels := []string{"a", "b", "c"}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		g := fixtures.RandomGraph(rng, 10+rng.Intn(40), 20+rng.Intn(120), labels)
		e := New(g, Options{})

		units := []rpq.BatchUnit{
			{Pre: rpq.MustParse("a"), R: rpq.MustParse("b"), Type: rpq.ClosurePlus, Post: rpq.MustParse("c")},
			{Pre: rpq.MustParse("a"), R: rpq.MustParse("b.c"), Type: rpq.ClosureStar, Post: rpq.MustParse("a")},
			{Pre: rpq.Epsilon{}, R: rpq.MustParse("a"), Type: rpq.ClosurePlus, Post: rpq.Epsilon{}},
			{Pre: rpq.MustParse("a.b"), R: rpq.MustParse("c"), Type: rpq.ClosureStar, Post: rpq.Epsilon{}},
			{Pre: rpq.Epsilon{}, R: rpq.MustParse("b"), Type: rpq.ClosurePlus, Post: rpq.MustParse("a.c")},
		}
		for _, bu := range units {
			preG := pairs.RelationFromSet(g.NumVertices(), eval.Evaluate(g, bu.Pre))
			postG := pairs.RelationFromSet(g.NumVertices(), eval.Evaluate(g, bu.Post))
			rg := eval.Evaluate(g, bu.R)
			structure := rtc.ComputeFromResult(g.NumVertices(), rg, rtc.BFSClosure)
			closure := tc.BFS(rtc.EdgeReduce(g.NumVertices(), rg))

			fwd, err := e.EvalBatchUnit(preG, structure, bu.Type, bu.Post)
			if err != nil {
				t.Fatal(err)
			}
			bwd, err := e.EvalBatchUnitBackward(preG, structure, bu.Type, postG)
			if err != nil {
				t.Fatal(err)
			}
			if !bwd.Equal(fwd) {
				t.Errorf("seed %d %v: RTC backward %d pairs, forward %d pairs", seed, bu, bwd.Len(), fwd.Len())
			}

			fullFwd, err := e.EvalBatchUnitFull(preG, closure, bu.Type, bu.Post)
			if err != nil {
				t.Fatal(err)
			}
			fullBwd, err := e.EvalBatchUnitFullBackward(preG, closure, bu.Type, postG)
			if err != nil {
				t.Fatal(err)
			}
			if !fullBwd.Equal(fullFwd) {
				t.Errorf("seed %d %v: full backward %d pairs, forward %d pairs", seed, bu, fullBwd.Len(), fullFwd.Len())
			}
			if !fwd.Equal(fullFwd) {
				t.Errorf("seed %d %v: RTC and full joins disagree", seed, bu)
			}
		}
	}
}

// A backward-planned engine evaluation must agree with the reference on
// a workload where the planner genuinely picks backward: the paper-scale
// RMAT_3 graph with a three-label Post chain (the selpost shape of the
// planner benchmark).
func TestBackwardPlanEndToEnd(t *testing.T) {
	g, err := datagen.PaperRMATN(3, 9, 2025)
	if err != nil {
		t.Fatal(err)
	}
	e := New(g, Options{Planner: PlannerCostBased})

	q := rpq.MustParse("l3.l0+.l3.l3.l3")
	pl, err := e.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Clauses[0].Direction != plan.Backward.String() {
		t.Fatalf("planner chose %s/%s; the skewed fixture should force backward",
			pl.Clauses[0].Kind, pl.Clauses[0].Direction)
	}
	got, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := eval.Reference(g, q); !got.Equal(want) {
		t.Fatalf("backward plan: %d pairs, reference %d pairs", got.Len(), want.Len())
	}
}
