package core

import (
	"fmt"
	"strings"

	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rtc"
	"rtcshare/internal/tc"
)

// SnapshotState is the persistable state of one engine at one graph
// epoch: the frozen graph, the epoch number, and every completed shared
// structure the cache held at that epoch — RTCs and full closures keyed
// by their sub-query text, sealed relations keyed by query text. It is
// what internal/store serialises; Engine.SnapshotState captures one and
// RestoreEngine rebuilds an engine from one. The structure maps carry
// both strategies' structures regardless of the engine's own Strategy,
// so a snapshot is strategy-agnostic: the restoring engine installs all
// of them and simply reads the region its strategy uses.
type SnapshotState struct {
	Graph *graph.Graph
	Epoch uint64

	// RTCs maps sub-query text R to its reduced transitive closure.
	RTCs map[string]*rtc.RTC
	// Fulls maps sub-query text R to the full closure R+_G.
	Fulls map[string]*tc.Closure
	// Relations maps (sub-)query text to its sealed columnar result.
	Relations map[string]*pairs.Relation
}

// SnapshotState captures the engine's current graph version plus every
// completed, retained cache entry at that version's epoch. Entries still
// in flight and entries at other epochs are skipped — the snapshot
// describes exactly one graph version. Concurrent evaluations may keep
// running; a concurrent ApplyUpdates should be excluded by the caller
// (store.Persistent serialises the two) so the captured epoch is the
// one the write-ahead log continues from.
func (e *Engine) SnapshotState() *SnapshotState {
	v := e.version()
	st := &SnapshotState{
		Graph:     v.g,
		Epoch:     v.epoch,
		RTCs:      make(map[string]*rtc.RTC),
		Fulls:     make(map[string]*tc.Closure),
		Relations: make(map[string]*pairs.Relation),
	}
	e.cache.exportCompleted(v.epoch, func(region CacheRegion, key string, val any) {
		switch region {
		case RegionStructure:
			if r, ok := strings.CutPrefix(key, nsRTC); ok {
				if sv, ok := val.(*rtcValue); ok {
					st.RTCs[r] = sv.structure
				}
			} else if r, ok := strings.CutPrefix(key, nsFull); ok {
				if sv, ok := val.(*fullValue); ok {
					st.Fulls[r] = sv.closure
				}
			}
		case RegionRelation:
			if rel, ok := val.(*pairs.Relation); ok {
				st.Relations[key] = rel
			}
		}
	})
	return st
}

// RestoreEngine rebuilds an engine from a snapshot: a fresh SharedCache
// is pinned to the snapshot's epoch, the engine is constructed over the
// snapshot's graph, and every persisted structure is installed as a
// completed cache entry — so the first queries after a restart hit the
// cache instead of recomputing closures, and a subsequent ApplyUpdates
// (the WAL replay) migrates them under the normal carry/patch/drop
// rules. Structures are sanity-checked against the graph's vertex count;
// relations are installed best-effort under the relation-region budget.
// Non-caching configurations (NoSharing, DisableCache) restore the graph
// and epoch only.
func RestoreEngine(st *SnapshotState, opts Options) (*Engine, error) {
	if st == nil || st.Graph == nil {
		return nil, fmt.Errorf("core: restore: snapshot has no graph")
	}
	n := st.Graph.NumVertices()
	cache := NewSharedCache()
	cache.epoch.Store(st.Epoch)
	e := NewWithCache(st.Graph, opts, cache)
	if !e.shouldCache() {
		return e, nil
	}
	for r, s := range st.RTCs {
		if len(s.Components().CompOf) != n {
			return nil, fmt.Errorf("core: restore: RTC %q spans %d vertices, graph has %d", r, len(s.Components().CompOf), n)
		}
		cache.installStructure(nsRTC+r, &rtcValue{structure: s, summary: restoredRTCSummary(r, s)})
	}
	for r, cl := range st.Fulls {
		if cl.NumVertices() != n {
			return nil, fmt.Errorf("core: restore: closure %q spans %d vertices, graph has %d", r, cl.NumVertices(), n)
		}
		cache.installStructure(nsFull+r, &fullValue{closure: cl, summary: restoredFullSummary(r, cl)})
	}
	for q, rel := range st.Relations {
		if rel.NumVertices() != n {
			return nil, fmt.Errorf("core: restore: relation %q spans %d vertices, graph has %d", q, rel.NumVertices(), n)
		}
		cache.installRelation(q, rel)
	}
	return e, nil
}

// restoredRTCSummary rebuilds the SharedSummary of a restored RTC from
// the structure itself. Every field is derivable: the summaries are
// reporting metadata, so snapshots do not store them. Tarjan assigns a
// component to exactly the active vertices of G_R, so
// NumActiveVertices() equals the |V_R| computeRTC records.
func restoredRTCSummary(r string, s *rtc.RTC) SharedSummary {
	return SharedSummary{
		R:                   r,
		SharedPairs:         s.NumSharedPairs(),
		ReducedVertices:     s.NumReducedVertices(),
		EdgeReducedVertices: s.Components().NumActiveVertices(),
		AvgSCCSize:          s.Components().AverageSize(),
	}
}

// restoredFullSummary is restoredRTCSummary for a full closure, matching
// the fields the incremental patch path reports (NumActive for both
// vertex counts).
func restoredFullSummary(r string, cl *tc.Closure) SharedSummary {
	active := cl.NumActive()
	return SharedSummary{
		R:                   r,
		SharedPairs:         cl.NumPairs(),
		ReducedVertices:     active,
		EdgeReducedVertices: active,
	}
}

// exportCompleted calls fn for every completed, error-free, retained
// entry of both regions whose epoch matches exactly. fn runs outside the
// shard locks. Iteration order is unspecified (the persistence layer
// sorts keys for deterministic bytes).
func (c *SharedCache) exportCompleted(epoch uint64, fn func(region CacheRegion, key string, val any)) {
	type kv struct {
		key string
		val any
	}
	collect := func(region CacheRegion, shards *[cacheShards]cacheShard) {
		for i := range shards {
			s := &shards[i]
			var done []kv
			s.mu.Lock()
			for key, e := range s.entries {
				if e.epoch != epoch {
					continue
				}
				select {
				case <-e.done:
					if e.err == nil && e.retained {
						done = append(done, kv{key: key, val: e.val})
					}
				default:
					// In flight: not part of this epoch's durable state.
				}
			}
			s.mu.Unlock()
			for _, it := range done {
				fn(region, it.key, it.val)
			}
		}
	}
	collect(RegionStructure, &c.shards)
	collect(RegionRelation, &c.relShards)
}

// installStructure places an already-computed structure value under key
// at the cache's current epoch, as a completed retained entry. An
// existing entry wins: a reader that raced a fresh computation in is at
// least as current as the restored copy.
func (c *SharedCache) installStructure(key string, val any) {
	s := c.shard(key)
	epoch := c.epoch.Load()
	s.mu.Lock()
	if _, exists := s.entries[key]; !exists {
		s.entries[key] = completedEntry(epoch, val, true)
	}
	s.mu.Unlock()
}

// installRelation is installStructure for the relation region, charged
// against the region budget; it reports whether the relation was
// actually retained (a declined or raced install is simply not restored
// — the next use recomputes it, which is correct, just colder).
func (c *SharedCache) installRelation(key string, val any) bool {
	if !c.admitRelation(val) {
		return false
	}
	s := c.relShard(key)
	epoch := c.epoch.Load()
	s.mu.Lock()
	if _, exists := s.entries[key]; exists {
		s.mu.Unlock()
		c.evictRelation(val)
		return false
	}
	s.entries[key] = completedEntry(epoch, val, true)
	s.mu.Unlock()
	return true
}
