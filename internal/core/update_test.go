package core

import (
	"testing"

	"rtcshare/internal/eval"
	"rtcshare/internal/graph"
	"rtcshare/internal/rpq"
)

// chainGraph builds 0 -a-> 1 -a-> 2 ... plus a b-edge n-1 -b-> 0 over n
// vertices.
func chainGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.MustAddEdge(graph.VID(i), "a", graph.VID(i+1))
	}
	b.MustAddEdge(graph.VID(n-1), "b", 0)
	return b.Build()
}

// assertOracle checks the engine against a fresh reference evaluation of
// the engine's current graph.
func assertOracle(t *testing.T, e *Engine, queries ...string) {
	t.Helper()
	for _, q := range queries {
		expr := rpq.MustParse(q)
		got, err := e.Evaluate(expr)
		if err != nil {
			t.Fatalf("evaluate %q: %v", q, err)
		}
		want := eval.Reference(e.Graph(), expr)
		if !got.Equal(want) {
			t.Fatalf("%q: engine %d pairs, reference %d pairs", q, got.Len(), want.Len())
		}
	}
}

func TestApplyUpdatesBasic(t *testing.T) {
	e := New(chainGraph(6), Options{})
	assertOracle(t, e, "a+", "a+.b")

	res, err := e.ApplyUpdates([]GraphUpdate{
		InsertEdge(2, "a", 0), // cycle-creating for the a+ structure
		InsertEdge(3, "c", 4), // brand-new label
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Deleted != 0 {
		t.Fatalf("effective changes = %+v", res)
	}
	if res.Epoch != 1 || e.Epoch() != 1 || e.Cache().CurrentEpoch() != 1 {
		t.Fatalf("epoch not advanced: res=%d engine=%d cache=%d", res.Epoch, e.Epoch(), e.Cache().CurrentEpoch())
	}
	if lid, ok := e.Graph().Dict().Lookup("a"); !ok || !e.Graph().HasEdge(2, lid, 0) {
		t.Fatal("new graph version missing inserted edge")
	}
	assertOracle(t, e, "a+", "a+.b", "a.c?", "c")

	// Deletes flow through too, falling back to recompute.
	if _, err := e.ApplyUpdates([]GraphUpdate{DeleteEdge(0, "a", 1)}); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, e, "a+", "a+.b")
}

func TestApplyUpdatesMigrationSplit(t *testing.T) {
	e := New(chainGraph(8), Options{})
	// Warm two closure structures (R=a and R=b) and their side relations.
	assertOracle(t, e, "a+", "b+", "a.b+")

	// Insert on a: the a-structure patches, the b-structure carries.
	res, err := e.ApplyUpdates([]GraphUpdate{InsertEdge(4, "a", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patched != 1 || res.Carried != 1 || res.Dropped != 0 {
		t.Fatalf("structure split = patched %d carried %d dropped %d, want 1/1/0",
			res.Patched, res.Carried, res.Dropped)
	}
	if res.RelCarried == 0 {
		t.Fatalf("no relations carried: %+v", res)
	}
	assertOracle(t, e, "a+", "b+", "a.b+")

	// Patched and carried structures must be warm: re-running the batch
	// costs no new structure computations.
	missesBefore := e.Cache().Counters().Misses
	assertOracle(t, e, "a+", "b+", "a.b+")
	if misses := e.Cache().Counters().Misses; misses != missesBefore {
		t.Fatalf("warm structures recomputed: misses %d → %d", missesBefore, misses)
	}

	// A delete on a drops the a-structure (recompute fallback), b carries.
	res, err = e.ApplyUpdates([]GraphUpdate{DeleteEdge(4, "a", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 1 || res.Carried != 1 || res.Patched != 0 {
		t.Fatalf("delete split = patched %d carried %d dropped %d, want 0/1/1",
			res.Patched, res.Carried, res.Dropped)
	}
	assertOracle(t, e, "a+", "b+", "a.b+")
}

func TestApplyUpdatesDisableIncremental(t *testing.T) {
	e := New(chainGraph(8), Options{DisableIncremental: true})
	assertOracle(t, e, "a+")
	res, err := e.ApplyUpdates([]GraphUpdate{InsertEdge(4, "a", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Patched != 0 || res.Dropped != 1 {
		t.Fatalf("DisableIncremental still patched: %+v", res)
	}
	assertOracle(t, e, "a+")
}

func TestApplyUpdatesNoOpAndErrors(t *testing.T) {
	e := New(chainGraph(4), Options{})

	// Ineffective batch: duplicate insert + missing delete → no epoch bump.
	res, err := e.ApplyUpdates([]GraphUpdate{
		InsertEdge(0, "a", 1),
		DeleteEdge(0, "nope", 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 || res.Deleted != 0 || res.Epoch != 0 || e.Epoch() != 0 {
		t.Fatalf("no-op batch changed state: %+v epoch=%d", res, e.Epoch())
	}

	// Out-of-range endpoints reject the whole batch before any mutation.
	if _, err := e.ApplyUpdates([]GraphUpdate{
		InsertEdge(0, "a", 2),
		InsertEdge(0, "a", 99),
	}); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if e.Graph().HasEdge(0, 0, 2) {
		t.Fatal("rejected batch partially applied")
	}
	if _, err := e.ApplyUpdates([]GraphUpdate{{Op: UpdateOp(7), Src: 0, Label: "a", Dst: 1}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestApplyUpdatesForkPinsVersion(t *testing.T) {
	e := New(chainGraph(5), Options{})
	fork := e.Fork()
	if _, err := e.ApplyUpdates([]GraphUpdate{InsertEdge(4, "a", 0)}); err != nil {
		t.Fatal(err)
	}
	// The fork still answers against the pre-update graph...
	got, err := fork.Evaluate(rpq.MustParse("a+"))
	if err != nil {
		t.Fatal(err)
	}
	preOracle := eval.Reference(chainGraph(5), rpq.MustParse("a+"))
	if !got.Equal(preOracle) {
		t.Fatalf("fork drifted onto the new version: %d pairs, want %d", got.Len(), preOracle.Len())
	}
	// ...while the parent answers against the new one.
	assertOracle(t, e, "a+")
	// And no value ever crossed epochs.
	if cc := e.Cache().Counters(); cc.CrossEpochHits != 0 {
		t.Fatalf("cross-epoch hits: %d", cc.CrossEpochHits)
	}
}

func TestApplyUpdatesMapLayoutAndStrategies(t *testing.T) {
	for _, opts := range []Options{
		{Layout: LayoutMapSet},
		{Strategy: FullSharing},
		{Strategy: NoSharing},
	} {
		e := New(chainGraph(6), opts)
		assertOracle(t, e, "a+", "a+.b")
		if _, err := e.ApplyUpdates([]GraphUpdate{InsertEdge(3, "a", 0), DeleteEdge(5, "b", 0)}); err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		assertOracle(t, e, "a+", "a+.b", "b?")
	}
}
