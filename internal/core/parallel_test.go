package core

import (
	"fmt"
	"sync"
	"testing"

	"rtcshare/internal/datagen"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/workload"
)

// stressGraph draws a small RMAT graph with enough cycles that the
// closure sub-queries produce non-trivial SCC structure.
func stressGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	g, err := datagen.RMAT(datagen.RMATConfig{
		Vertices: 256,
		Edges:    1024,
		Labels:   4,
		Seed:     seed,
	})
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	return g
}

// stressBatch builds a query batch whose queries overlap on a small
// number of distinct closure sub-queries R — the sharing-heavy shape of
// the paper's workloads.
func stressBatch(t testing.TB, seed int64, sets, perSet int) ([]rpq.Expr, int) {
	t.Helper()
	cfg := workload.DefaultConfig(sets, seed)
	cfg.MaxRPQs = perSet
	ws, err := workload.GenerateOver([]string{"l0", "l1", "l2", "l3"}, cfg)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	var batch []rpq.Expr
	distinct := make(map[string]bool)
	for _, s := range ws {
		distinct[s.R.String()] = true
		batch = append(batch, s.Queries...)
	}
	return batch, len(distinct)
}

// TestEvaluateBatchParallelMatchesSerial is the core stress test: a
// sharing-heavy batch fanned over many workers must produce exactly the
// serial results, and the shared cache must have computed each distinct
// closure sub-query exactly once. Run under -race this exercises the
// singleflight, the stats locking, and the evaluator free lists.
func TestEvaluateBatchParallelMatchesSerial(t *testing.T) {
	g := stressGraph(t, 7)
	batch, distinctR := stressBatch(t, 11, 6, 8) // 48 queries over 6 R's

	for _, strategy := range []Strategy{RTCSharing, FullSharing} {
		t.Run(strategy.String(), func(t *testing.T) {
			serial := New(g, Options{Strategy: strategy})
			want, err := serial.EvaluateSet(batch)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}

			for _, workers := range []int{2, 4, 8} {
				par := New(g, Options{Strategy: strategy})
				got, err := par.EvaluateBatchParallel(batch, workers)
				if err != nil {
					t.Fatalf("parallel(%d): %v", workers, err)
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("parallel(%d): query %d (%s): %d pairs, want %d",
							workers, i, batch[i], got[i].Len(), want[i].Len())
					}
				}

				// Each distinct R computed exactly once despite the races.
				// Workload queries are Pre·R+·Post with label Pre/Post, so
				// every query is one closure clause and every structure
				// lookup is for one of the distinctR shared sub-queries.
				// Structure lookups happen once per DISTINCT query text:
				// a repeated text is answered from its memoised result
				// relation without touching the structure region.
				distinctQ := make(map[string]bool)
				for _, q := range batch {
					distinctQ[q.String()] = true
				}
				st := par.Stats()
				if st.Queries != len(batch) {
					t.Errorf("parallel(%d): merged Queries = %d, want %d", workers, st.Queries, len(batch))
				}
				if st.CacheMisses != distinctR {
					t.Errorf("parallel(%d): merged CacheMisses = %d, want %d (one per distinct R)",
						workers, st.CacheMisses, distinctR)
				}
				if want := len(distinctQ) - distinctR; st.CacheHits != want {
					t.Errorf("parallel(%d): merged CacheHits = %d, want %d (distinct queries %d - distinct R %d)",
						workers, st.CacheHits, want, len(distinctQ), distinctR)
				}
				if n := len(par.SharedSummaries()); n != distinctR {
					t.Errorf("parallel(%d): %d shared summaries, want %d", workers, n, distinctR)
				}
			}
		})
	}
}

// TestEvaluateBatchParallelNoSharing checks the baseline keeps its
// defining property under parallelism: nothing is reused, so the merged
// stats show one miss per closure clause evaluated.
func TestEvaluateBatchParallelNoSharing(t *testing.T) {
	g := stressGraph(t, 7)
	batch, _ := stressBatch(t, 11, 3, 6)

	serial := New(g, Options{Strategy: NoSharing})
	want, err := serial.EvaluateSet(batch)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	par := New(g, Options{Strategy: NoSharing})
	got, err := par.EvaluateBatchParallel(batch, 4)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("query %d: results differ", i)
		}
	}
	st := par.Stats()
	if st.CacheHits != 0 {
		t.Errorf("NoSharing cache hits = %d, want 0", st.CacheHits)
	}
	if st.CacheMisses != len(batch) {
		t.Errorf("NoSharing cache misses = %d, want %d (one per query)", st.CacheMisses, len(batch))
	}
	if cc := par.Cache().Counters(); cc.Misses != 0 || cc.Entries != 0 {
		t.Errorf("NoSharing populated the shared cache: %+v", cc)
	}
}

// TestConcurrentEvaluateOnOneEngine drives a single shared Engine from
// many goroutines — the server scenario — and checks results and the
// exactly-once invariant. This is the test that fails if any engine
// state (stats, summaries, evaluator scratch) is unprotected.
func TestConcurrentEvaluateOnOneEngine(t *testing.T) {
	g := stressGraph(t, 13)
	batch, distinctR := stressBatch(t, 17, 4, 8)

	serial := New(g, Options{})
	want, err := serial.EvaluateSet(batch)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}

	shared := New(g, Options{})
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*len(batch))
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each goroutine walks the whole batch from a different
			// offset, maximising same-R collisions.
			for i := 0; i < len(batch); i++ {
				j := (i + w*len(batch)/goroutines) % len(batch)
				res, err := shared.Evaluate(batch[j])
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d: %w", w, j, err)
					return
				}
				if !res.Equal(want[j]) {
					errs <- fmt.Errorf("worker %d query %d (%s): %d pairs, want %d",
						w, j, batch[j], res.Len(), want[j].Len())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := shared.Stats()
	if st.Queries != goroutines*len(batch) {
		t.Errorf("Queries = %d, want %d", st.Queries, goroutines*len(batch))
	}
	if st.CacheMisses != distinctR {
		t.Errorf("CacheMisses = %d, want %d (each R computed once across %d goroutines)",
			st.CacheMisses, distinctR, goroutines)
	}
}

// TestForkedEnginesShareCache pins the Fork contract: a structure
// computed through one fork is a hit on its sibling, and both report it
// in their summaries.
func TestForkedEnginesShareCache(t *testing.T) {
	g := stressGraph(t, 19)
	parent := New(g, Options{})
	a, b := parent.Fork(), parent.Fork()

	if _, err := a.EvaluateQuery("l0.(l1.l2)+.l3"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.EvaluateQuery("l3.(l1.l2)+.l0"); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Errorf("fork a stats = %+v, want 1 miss / 0 hits", st)
	}
	if st := b.Stats(); st.CacheMisses != 0 || st.CacheHits != 1 {
		t.Errorf("fork b stats = %+v, want 0 misses / 1 hit", st)
	}
	for name, e := range map[string]*Engine{"a": a, "b": b} {
		sums := e.SharedSummaries()
		if len(sums) != 1 || sums[0].R != "l1.l2" {
			t.Errorf("fork %s summaries = %+v, want exactly R=l1.l2", name, sums)
		}
	}
}

// TestEvaluateBatchParallelErrors checks error propagation: a
// malformed query anywhere in the batch fails the whole call.
func TestEvaluateBatchParallelErrors(t *testing.T) {
	g := stressGraph(t, 23)
	e := New(g, Options{})
	if _, err := e.EvaluateQueriesParallel([]string{"l0", "l1.(", "l2"}, 2); err == nil {
		t.Fatal("parse error not propagated")
	}

	// A DNF blow-up inside Evaluate must also surface.
	tiny := New(g, Options{MaxDNFClauses: 1})
	qs := []rpq.Expr{rpq.MustParse("l0|l1"), rpq.MustParse("l0|l1"), rpq.MustParse("l2|l3")}
	if _, err := tiny.EvaluateBatchParallel(qs, 2); err == nil {
		t.Fatal("DNF limit error not propagated")
	}
}

// TestEvaluateBatchParallelDegenerate covers the serial fallbacks.
func TestEvaluateBatchParallelDegenerate(t *testing.T) {
	g := stressGraph(t, 29)
	e := New(g, Options{})
	if res, err := e.EvaluateBatchParallel(nil, 4); err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	one := []rpq.Expr{rpq.MustParse("l0.(l1)+.l2")}
	res, err := e.EvaluateBatchParallel(one, 8)
	if err != nil || len(res) != 1 {
		t.Fatalf("single-query batch: %v, %v", res, err)
	}
	want, err := New(g, Options{}).Evaluate(one[0])
	if err != nil || !res[0].Equal(want) {
		t.Fatalf("single-query batch result differs: %v", err)
	}
}

// TestExplainDisableCacheIgnoresSharedEntries pins the Explain fix: an
// engine that will never reuse structures must not report a sibling's
// cached entry as its own.
func TestExplainDisableCacheIgnoresSharedEntries(t *testing.T) {
	g := stressGraph(t, 31)
	cache := NewSharedCache()
	warm := NewWithCache(g, Options{}, cache)
	if _, err := warm.EvaluateQuery("l0.(l1.l2)+.l3"); err != nil {
		t.Fatal(err)
	}

	cold := NewWithCache(g, Options{DisableCache: true}, cache)
	plan, err := cold.ExplainQuery("l0.(l1.l2)+.l3")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Clauses[0].SharedCached {
		t.Errorf("DisableCache engine reports SharedCached=true, but evaluation will recompute")
	}

	// The sharing sibling does see it.
	plan, err = warm.Explain(rpq.MustParse("l0.(l1.l2)+.l3"))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Clauses[0].SharedCached {
		t.Errorf("sharing engine does not report the cached structure")
	}
}

// TestCacheHoldsOnlyStructures pins the region contract: the structure
// region retains exactly the compact closure structures (its Entries
// counter keeps meaning "structures"), while sub-query and result
// relations live in the separately counted relation region.
func TestCacheHoldsOnlyStructures(t *testing.T) {
	g := stressGraph(t, 37)
	e := New(g, Options{})
	if _, err := e.EvaluateQuery("l0.(l1.l2)+.l3"); err != nil {
		t.Fatal(err)
	}
	cc := e.Cache().Counters()
	if cc.Entries != 1 {
		t.Errorf("cache entries = %d, want 1 (the RTC only; sub-results are per-engine)", cc.Entries)
	}
	if _, ok := e.Cache().Lookup(0, nsRTC+"l1.l2"); !ok {
		t.Errorf("RTC for l1.l2 not in the cache")
	}

	// A fork shares the whole relation region: the repeated query is
	// answered from the memoised result relation, so the fork performs
	// no structure lookup at all.
	f := e.Fork()
	relHits := e.Cache().Counters().RelHits
	res, err := f.EvaluateQuery("l0.(l1.l2)+.l3")
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(g, Options{}).EvaluateQuery("l0.(l1.l2)+.l3")
	if err != nil || !res.Equal(want) {
		t.Fatalf("forked engine result differs: %v", err)
	}
	if st := f.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Errorf("fork stats = %+v, want no structure lookups (result relation reused)", st)
	}
	if got := e.Cache().Counters().RelHits; got <= relHits {
		t.Errorf("RelHits = %d, want > %d (fork served from the relation region)", got, relHits)
	}
}

// TestEvaluateBatchParallelRelMatchesSerial: the sealed-relation batch
// hook must return, pair for pair, what serial EvaluateRel returns, in
// input order, stamped with the engine's (unchanged) epoch.
func TestEvaluateBatchParallelRelMatchesSerial(t *testing.T) {
	g := stressGraph(t, 23)
	batch, _ := stressBatch(t, 29, 4, 6)

	serial := New(g, Options{})
	want := make([]*pairs.Relation, len(batch))
	for i, q := range batch {
		rel, err := serial.EvaluateRel(q)
		if err != nil {
			t.Fatalf("serial EvaluateRel: %v", err)
		}
		want[i] = rel
	}

	for _, workers := range []int{1, 4} {
		e := New(g, Options{})
		got, epoch, err := e.EvaluateBatchParallelRel(batch, workers)
		if err != nil {
			t.Fatalf("EvaluateBatchParallelRel(workers=%d): %v", workers, err)
		}
		if epoch != e.Epoch() {
			t.Fatalf("workers=%d: batch epoch %d, engine epoch %d", workers, epoch, e.Epoch())
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("workers=%d: query %d (%s) differs from serial", workers, i, batch[i])
			}
		}
	}
}

// TestEvaluateRelEpoch: the stamped epoch must track ApplyUpdates.
func TestEvaluateRelEpoch(t *testing.T) {
	g := stressGraph(t, 31)
	e := New(g, Options{})
	q := rpq.MustParse("l0+")

	rel0, epoch0, err := e.EvaluateRelEpoch(q)
	if err != nil {
		t.Fatal(err)
	}
	if epoch0 != e.Epoch() {
		t.Fatalf("epoch %d, engine %d", epoch0, e.Epoch())
	}
	if _, err := e.ApplyUpdates([]GraphUpdate{InsertEdge(0, "l0", 1), InsertEdge(1, "l0", 2)}); err != nil {
		t.Fatal(err)
	}
	rel1, epoch1, err := e.EvaluateRelEpoch(q)
	if err != nil {
		t.Fatal(err)
	}
	if epoch1 <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, epoch1)
	}
	if !rel1.Contains(0, 2) {
		t.Fatalf("updated closure missing inserted path")
	}
	_ = rel0
}

// TestEvaluateBatchParallelRelError: parse-time-valid but failing
// queries (DNF bound) abort the batch with the error.
func TestEvaluateBatchParallelRelError(t *testing.T) {
	g := stressGraph(t, 37)
	e := New(g, Options{MaxDNFClauses: 1})
	qs := []rpq.Expr{rpq.MustParse("l0+"), rpq.MustParse("(l0|l1).(l2|l3)")}
	if _, _, err := e.EvaluateBatchParallelRel(qs, 2); err == nil {
		t.Fatal("expected DNF-bound error")
	}
	if out, _, err := e.EvaluateBatchParallelRel(nil, 2); err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}
