package core

import (
	"strings"
	"testing"

	"rtcshare/internal/fixtures"
)

func TestExplainBasic(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{Strategy: RTCSharing})
	plan, err := e.ExplainQuery("d.(b.c)+.c")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Clauses) != 1 {
		t.Fatalf("clauses = %d, want 1", len(plan.Clauses))
	}
	c := plan.Clauses[0]
	if c.Pre != "d" || c.R != "b.c" || c.Type != "+" || c.Post != "c" {
		t.Errorf("decomposition wrong: %+v", c)
	}
	if c.SharedCached {
		t.Error("RTC reported cached before any evaluation")
	}
	if c.PreHasKleene {
		t.Error("Pre=d has no Kleene closure")
	}

	// After evaluation, the same plan must report the cache hit.
	if _, err := e.EvaluateQuery("d.(b.c)+.c"); err != nil {
		t.Fatal(err)
	}
	plan, err = e.ExplainQuery("a.(b.c)*")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Clauses[0].SharedCached {
		t.Error("RTC for b.c should be reported cached")
	}
	if plan.Clauses[0].Type != "*" {
		t.Errorf("Type = %q, want *", plan.Clauses[0].Type)
	}
}

func TestExplainMultiClause(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{})
	plan, err := e.ExplainQuery("(a|b).c+|d")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Clauses) != 3 { // a.c+, b.c+, d
		t.Fatalf("clauses = %d, want 3: %+v", len(plan.Clauses), plan.Clauses)
	}
	kcFree := 0
	for _, c := range plan.Clauses {
		if c.Type == "NULL" {
			kcFree++
		}
	}
	if kcFree != 1 {
		t.Errorf("closure-free clauses = %d, want 1", kcFree)
	}
}

func TestExplainNestedPre(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{})
	plan, err := e.ExplainQuery("(a.b)*.b+.(a.b+.c)+")
	if err != nil {
		t.Fatal(err)
	}
	c := plan.Clauses[0]
	if !c.PreHasKleene {
		t.Error("Pre=(a.b)*.b+ must be flagged as recursive")
	}
	if c.R != "a.b+.c" {
		t.Errorf("R = %q", c.R)
	}
}

func TestExplainErrorsAndString(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{})
	if _, err := e.ExplainQuery("(("); err == nil {
		t.Error("want parse error")
	}
	e2 := New(g, Options{MaxDNFClauses: 1})
	if _, err := e2.ExplainQuery("a|b"); err == nil {
		t.Error("want DNF limit error")
	}
	plan, err := e.ExplainQuery("d.(b.c)+.c|a")
	if err != nil {
		t.Fatal(err)
	}
	s := plan.String()
	for _, want := range []string{"plan for", "clause 1", "Pre=d", "no Kleene closure", "will be computed"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan rendering missing %q:\n%s", want, s)
		}
	}
}

func TestExplainDoesNotMutateCaches(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{})
	if _, err := e.ExplainQuery("d.(b.c)+.c"); err != nil {
		t.Fatal(err)
	}
	if len(e.SharedSummaries()) != 0 {
		t.Error("Explain populated the cache")
	}
	if e.Stats().Queries != 0 {
		t.Error("Explain counted as a query")
	}
}
