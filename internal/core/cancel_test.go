package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"rtcshare/internal/datagen"
	"rtcshare/internal/fixtures"
	"rtcshare/internal/rpq"
)

// countingCtx is a context whose Err flips to Canceled after failAfter
// polls — a deterministic stand-in for "the client walked away
// mid-evaluation" that also counts exactly how often the engine's
// checkpoints look at it.
type countingCtx struct {
	context.Context
	polls     atomic.Int64
	failAfter int64
}

func (c *countingCtx) Err() error {
	if c.polls.Add(1) > c.failAfter {
		return context.Canceled
	}
	return nil
}

// heavyFixture returns a fresh engine over a graph, with a query,
// expensive enough that an uncancelled evaluation polls an attached
// context many times — the precondition for asserting anything about
// checkpoint granularity. Each call builds a new engine so its caches
// are cold: a cache hit would answer without ever reaching a
// checkpoint, which is correct behaviour but useless for these tests.
func heavyFixture(t *testing.T) (*Engine, rpq.Expr) {
	t.Helper()
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 1500, Edges: 9000, Labels: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return New(g, Options{}), rpq.MustParse("(l0|l1)+.(l1|l2)+")
}

// TestEvaluateRelTimedCtxPreCancelled: an already-done context returns
// its error immediately, before any evaluation work.
func TestEvaluateRelTimedCtxPreCancelled(t *testing.T) {
	e := New(fixtures.Figure1(), Options{})
	evals := 0
	e.SetEvalHook(func(string) { evals++ })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.EvaluateRelTimedCtx(ctx, rpq.MustParse("d.(b.c)+.c"), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if evals != 0 {
		t.Fatalf("pre-cancelled context still ran %d evaluations", evals)
	}
}

// TestCancellationStopsWithinOneCheckpoint is the acceptance gate for
// the cancellation tentpole, made deterministic: the heavy query is
// first shown to poll an attached context many times (so checkpoints
// are dense in its evaluation), then a context that fails on poll K is
// attached and the evaluation must stop essentially at that poll — at
// most one further poll may happen (a second checkpoint site reached
// before the first's error propagates through a phase boundary), which
// is exactly the "within one checkpoint interval" bound.
func TestCancellationStopsWithinOneCheckpoint(t *testing.T) {
	e, q := heavyFixture(t)

	full := &countingCtx{Context: context.Background(), failAfter: 1 << 62}
	if _, _, err := e.EvaluateRelTimedCtx(full, q, nil); err != nil {
		t.Fatal(err)
	}
	total := full.polls.Load()
	if total < 20 {
		t.Fatalf("uncancelled evaluation polled only %d times — fixture not heavy enough to test granularity", total)
	}

	// A cold engine for the cancelled run: on e the first run populated
	// the shared caches, so a repeat would answer without reaching a
	// single checkpoint.
	cold, _ := heavyFixture(t)
	const failAfter = 3
	cc := &countingCtx{Context: context.Background(), failAfter: failAfter}
	_, _, err := cold.EvaluateRelTimedCtx(cc, q, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if polls := cc.polls.Load(); polls > failAfter+2 {
		t.Fatalf("evaluation kept running for %d polls after cancellation at poll %d", polls-failAfter, failAfter)
	}

	// The engine must be unharmed: the same query evaluates cleanly —
	// the aborted run must not have cached a partial result.
	if _, _, err := cold.EvaluateRelTimedCtx(context.Background(), q, nil); err != nil {
		t.Fatalf("evaluation after a cancelled run: %v", err)
	}
}

// TestCancellationStopsCPU is the wall-clock face of the same gate: an
// evaluation cancelled right after it starts must return far sooner
// than the full evaluation takes. Bounds are deliberately loose (4x) so
// scheduler noise cannot flake the test.
func TestCancellationStopsCPU(t *testing.T) {
	e, q := heavyFixture(t)

	t0 := time.Now()
	if _, _, err := e.EvaluateRelTimedCtx(context.Background(), q, nil); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(t0)

	cold, _ := heavyFixture(t)
	cc := &countingCtx{Context: context.Background(), failAfter: 2}
	t0 = time.Now()
	_, _, err := cold.EvaluateRelTimedCtx(cc, q, nil)
	cancelled := time.Since(t0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if serial > 20*time.Millisecond && cancelled > serial/4 {
		t.Fatalf("cancelled evaluation took %v of the serial %v — cancellation is not stopping work", cancelled, serial)
	}
}

// TestBatchParallelRelCtxCancelled: the batch entry point honours a
// context cancelled mid-flight across all its workers, and a fresh call
// on the same engine still succeeds.
func TestBatchParallelRelCtxCancelled(t *testing.T) {
	e, _ := heavyFixture(t)
	qs := []rpq.Expr{
		rpq.MustParse("(l0|l1)+.(l1|l2)+"),
		rpq.MustParse("(l1|l2)+.(l0|l2)+"),
		rpq.MustParse("(l0|l2)+.(l0|l1)+"),
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := e.EvaluateBatchParallelRelCtx(ctx, qs, 2, nil)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		// Cancellation may have lost the race with a fast evaluation; a
		// nil error is acceptable, anything else must be the context's.
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("batch err = %v, want context.Canceled or nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled batch did not return")
	}
	if _, _, err := e.EvaluateBatchParallelRelCtx(context.Background(), qs, 2, nil); err != nil {
		t.Fatalf("batch after cancelled batch: %v", err)
	}
}

// TestPanicIsolatedToQuery: a panic raised inside one query's
// evaluation surfaces as *QueryPanicError carrying the query text, and
// the engine — including its singleflight cache — stays fully usable
// for other queries and for the same query once the fault is removed.
func TestPanicIsolatedToQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := fixtures.RandomGraph(rng, 32, 96, []string{"a", "b", "c"})
	e := New(g, Options{})
	poison := "(a.b)+"
	armed := true
	e.SetEvalHook(func(q string) {
		if armed && q == poison {
			panic("injected evaluator fault")
		}
	})

	_, _, err := e.EvaluateRelTimedCtx(context.Background(), rpq.MustParse(poison), nil)
	var pe *QueryPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *QueryPanicError", err)
	}
	if pe.Query == "" || pe.Value == nil || len(pe.Stack) == 0 {
		t.Fatalf("panic error missing context: %+v", pe)
	}

	// Neighbours are unaffected, immediately after the recovered panic.
	if _, _, err := e.EvaluateRelTimedCtx(context.Background(), rpq.MustParse("b.c"), nil); err != nil {
		t.Fatalf("healthy query after panic: %v", err)
	}

	// The batch path: the poisoned query fails the batch call with the
	// panic error (recovered, not propagated), workers survive.
	qs := []rpq.Expr{rpq.MustParse("b.c"), rpq.MustParse(poison), rpq.MustParse("c.a")}
	if _, _, err := e.EvaluateBatchParallelRelCtx(context.Background(), qs, 2, nil); !errors.As(err, &pe) {
		t.Fatalf("batch err = %v, want *QueryPanicError", err)
	}

	// Disarm: the same string must evaluate cleanly — no poisoned entry
	// left behind in the singleflight or result caches.
	armed = false
	if _, _, err := e.EvaluateRelTimedCtx(context.Background(), rpq.MustParse(poison), nil); err != nil {
		t.Fatalf("query after fault removed: %v", err)
	}
}
