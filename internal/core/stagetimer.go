package core

import (
	"time"

	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
)

// StageTimer is the per-request latency breakdown of one query
// evaluation: a flat struct of nanosecond counters, one per pipeline
// stage, cheap enough to thread through the hot path without
// allocating. The serving layer attributes the queue and coalesce-wait
// stages; the engine attributes plan, closure-build, join, seal and
// the traversal/union remainder (Other); the HTTP handler attributes
// paging. The stages partition the work, so their sum tracks the wall
// time of the request end to end.
//
// A StageTimer is not safe for concurrent writers. The engine
// guarantees single-writer use by attaching a timer only to private
// worker forks (one evaluation at a time); see EvaluateRelTimed and
// EvaluateBatchParallelRelTimed.
type StageTimer struct {
	// QueueNS is time spent sealed but waiting for a dispatcher slot.
	QueueNS int64 `json:"queue_ns"`
	// CoalesceWaitNS is time spent in the open coalescing window,
	// waiting for company before the batch sealed.
	CoalesceWaitNS int64 `json:"coalesce_wait_ns"`
	// PlanNS covers DNF conversion, clause planning and admission
	// classification.
	PlanNS int64 `json:"plan_ns"`
	// ClosureBuildNS covers computing the shared closure structure —
	// TC(Ḡ_R) for RTCSharing, TC(G_R) for FullSharing — or waiting for
	// another goroutine's in-flight computation of it.
	ClosureBuildNS int64 `json:"closure_build_ns"`
	// JoinNS is the Pre ⋈ closure join (Algorithm 2).
	JoinNS int64 `json:"join_ns"`
	// SealNS is relation sealing: counting-sort into frozen CSR columns.
	SealNS int64 `json:"seal_ns"`
	// PageNS is result paging in the HTTP handler.
	PageNS int64 `json:"page_ns"`
	// OtherNS is everything else the engine does: automaton traversals,
	// sub-query evaluation boundaries, unions, set materialisation.
	OtherNS int64 `json:"other_ns"`
}

// Sum returns the total attributed time across all stages.
func (t *StageTimer) Sum() time.Duration {
	return time.Duration(t.QueueNS + t.CoalesceWaitNS + t.PlanNS +
		t.ClosureBuildNS + t.JoinNS + t.SealNS + t.PageNS + t.OtherNS)
}

// Add folds other into t stage by stage.
func (t *StageTimer) Add(other *StageTimer) {
	t.QueueNS += other.QueueNS
	t.CoalesceWaitNS += other.CoalesceWaitNS
	t.PlanNS += other.PlanNS
	t.ClosureBuildNS += other.ClosureBuildNS
	t.JoinNS += other.JoinNS
	t.SealNS += other.SealNS
	t.PageNS += other.PageNS
	t.OtherNS += other.OtherNS
}

// setStages attaches (or detaches, with nil) a per-request stage timer
// to this engine. Attribution happens under the same mutex as the
// three-part Stats split, so attaching a timer to a private fork adds
// no new synchronisation to the hot path.
func (e *Engine) setStages(st *StageTimer) {
	e.mu.Lock()
	e.stages = st
	e.mu.Unlock()
}

// EvaluateRelTimed is EvaluateRelEpoch with per-stage attribution into
// st: the single-query timed entry the serving layer's fast lane and
// no-coalescing paths use. The evaluation runs on a private fork so the
// timer has exactly one writer; the fork's Stats fold back into the
// receiver as usual. A nil st degenerates to EvaluateRelEpoch.
func (e *Engine) EvaluateRelTimed(q rpq.Expr, st *StageTimer) (*pairs.Relation, uint64, error) {
	if st == nil {
		return e.EvaluateRelEpoch(q)
	}
	worker := e.Fork()
	worker.setStages(st)
	rel, epoch, err := worker.EvaluateRelEpoch(q)
	worker.setStages(nil)
	e.absorb(worker)
	return rel, epoch, err
}
