package core

import (
	"strings"
	"testing"

	"rtcshare/internal/eval"
	"rtcshare/internal/fixtures"
	"rtcshare/internal/plan"
	"rtcshare/internal/rpq"
)

// Golden plans for the Fig. 1 fixture queries: the planner's chosen
// shape (kind), anchor and direction are pinned per clause so a planner
// regression — a different anchor, a silent direction flip, a bypass
// that stops firing — is loud. The fixture's statistics are fixed, so
// these choices are deterministic.
func TestExplainGoldenFigure1(t *testing.T) {
	type clauseGold struct {
		clause    string
		kind      string
		direction string
		anchor    int
		pre, r    string
		typ, post string
	}
	cases := []struct {
		name    string
		planner PlannerMode
		layout  Layout
		query   string
		clauses []clauseGold
	}{
		{
			name:    "paper example heuristic",
			planner: PlannerHeuristic,
			query:   "d.(b.c)+.c",
			clauses: []clauseGold{
				{"d.(b.c)+.c", "shared", "forward", 0, "d", "b.c", "+", "c"},
			},
		},
		{
			name:    "paper example cost-based",
			planner: PlannerCostBased,
			// Fig. 1 is tiny: every clause sits below the deviation floor
			// and the bypass misses the margin, so the cost-based planner
			// must reproduce the paper's pipeline exactly.
			query: "d.(b.c)+.c",
			clauses: []clauseGold{
				{"d.(b.c)+.c", "shared", "forward", 0, "d", "b.c", "+", "c"},
			},
		},
		{
			name:    "multi-closure clause heuristic anchors rightmost",
			planner: PlannerHeuristic,
			query:   "a+.b+.c",
			clauses: []clauseGold{
				{"a+.b+.c", "shared", "forward", 1, "a+", "b", "+", "c"},
			},
		},
		{
			name:    "alternation fans out into three clause plans",
			planner: PlannerHeuristic,
			query:   "(a|b).c+|d",
			clauses: []clauseGold{
				{"a.c+", "shared", "forward", 0, "a", "c", "+", "ε"},
				{"b.c+", "shared", "forward", 0, "b", "c", "+", "ε"},
				{"d", "automaton", "forward", -1, "ε", "ε", "NULL", "d"},
			},
		},
		{
			name:    "star closure heuristic",
			planner: PlannerHeuristic,
			query:   "a.(b.c)*",
			clauses: []clauseGold{
				{"a.(b.c)*", "shared", "forward", 0, "a", "b.c", "*", "ε"},
			},
		},
		{
			name:    "star closure cost-based keeps the shared plan on columnar",
			planner: PlannerCostBased,
			// Under the seed's map executor the seeded product traversal
			// undercut the shared plan here and the bypass fired (the
			// LayoutMapSet case below still pins that). The columnar
			// executor's join tuples cost half as much, which prices the
			// shared pipeline under the bypass's deviation margin — so on
			// the default layout the recalibrated model keeps the paper's
			// shared/forward plan.
			query: "a.(b.c)*",
			clauses: []clauseGold{
				{"a.(b.c)*", "shared", "forward", 0, "a", "b.c", "*", "ε"},
			},
		},
		{
			name:    "star closure cost-based takes the automaton bypass on the map layout",
			planner: PlannerCostBased,
			layout:  LayoutMapSet,
			// Pre = a is two edges and Post = ε: against map-join tuple
			// costs one seeded product traversal is predicted decisively
			// below building any shared structure, so the bypass clears
			// the deviation margin — the PR-2 cost model preserved
			// exactly.
			query: "a.(b.c)*",
			clauses: []clauseGold{
				{"a.(b.c)*", "automaton", "forward", 0, "a", "b.c", "*", "ε"},
			},
		},
		{
			name:    "multi-closure cost-based keeps the rightmost shared anchor",
			planner: PlannerCostBased,
			query:   "a+.b+.c",
			clauses: []clauseGold{
				{"a+.b+.c", "shared", "forward", 1, "a+", "b", "+", "c"},
			},
		},
	}

	g := fixtures.Figure1()
	for _, tc := range cases {
		e := New(g, Options{Strategy: RTCSharing, Planner: tc.planner, Layout: tc.layout})
		p, err := e.ExplainQuery(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if p.Planner != tc.planner {
			t.Errorf("%s: plan reports planner %v, want %v", tc.name, p.Planner, tc.planner)
		}
		if len(p.Clauses) != len(tc.clauses) {
			t.Fatalf("%s: %d clauses, want %d:\n%s", tc.name, len(p.Clauses), len(tc.clauses), p)
		}
		for i, want := range tc.clauses {
			got := p.Clauses[i]
			if got.Clause != want.clause || got.Kind != want.kind || got.Direction != want.direction ||
				got.Anchor != want.anchor || got.Pre != want.pre || got.R != want.r ||
				got.Type != want.typ || got.Post != want.post {
				t.Errorf("%s clause %d:\n got %+v\nwant %+v", tc.name, i, got, want)
			}
		}
	}
}

// The plan must report estimates, and ExplainAnalyze must fill in
// actuals that match a real evaluation. The heuristic planner keeps the
// paper's shared/forward pipeline, so the shared-path actuals (|Pre_G|,
// cache population) are observable.
func TestExplainAnalyzeFigure1(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{Planner: PlannerHeuristic})

	p, err := e.ExplainAnalyzeQuery("d.(b.c)+.c")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Analyzed {
		t.Fatal("ExplainAnalyze did not mark the plan analyzed")
	}
	// Example 1's worked result: {(v7,v5), (v7,v3)}.
	if p.ActualResultPairs != 2 {
		t.Errorf("actual result pairs = %d, want 2 (Example 1)", p.ActualResultPairs)
	}
	c := p.Clauses[0]
	if c.ActualPairs != 2 {
		t.Errorf("clause actual pairs = %d, want 2", c.ActualPairs)
	}
	// Pre = d has exactly one edge (v7 → v4).
	if c.ActualPrePairs != 1 {
		t.Errorf("actual |Pre_G| = %d, want 1", c.ActualPrePairs)
	}
	if c.EstCost <= 0 || c.EstClosurePairs <= 0 {
		t.Errorf("estimates missing: %+v", c)
	}
	if p.ActualTime <= 0 || c.ActualTime <= 0 {
		t.Errorf("timings missing: plan %v clause %v", p.ActualTime, c.ActualTime)
	}

	// ExplainAnalyze is a real evaluation: it counts as a query and
	// populates the cache, so a subsequent Explain sees the structure.
	if e.Stats().Queries != 1 {
		t.Errorf("queries = %d, want 1", e.Stats().Queries)
	}
	p2, err := e.ExplainQuery("a.(b.c)*")
	if err != nil {
		t.Fatal(err)
	}
	if !p2.Clauses[0].SharedCached {
		t.Error("RTC for b.c should be reported cached after ExplainAnalyze")
	}

	// The forward path never materialises Post as a relation.
	if c.ActualPostPairs != -1 {
		t.Errorf("forward plan reported |Post_G| = %d, want -1 (not materialised)", c.ActualPostPairs)
	}

	// Rendering includes the analyze block.
	s := p.String()
	for _, want := range []string{"actual:", "est cost", "candidate plan(s)"} {
		if !strings.Contains(s, want) {
			t.Errorf("analyzed plan rendering missing %q:\n%s", want, s)
		}
	}
}

// The automaton bypass executes a Kleene clause without any shared
// structure. The planner reserves it for clauses whose traversal is
// predicted cheaper than any join, which none of the tiny fixtures
// trigger — so this drives the executor with a hand-built bypass plan
// and checks it against the worked example and the reference oracle.
func TestExecClauseAutomatonBypass(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{})
	clause := rpq.MustParse("d.(b.c)+.c")
	cp := plan.ClausePlan{
		Clause:    clause,
		Kind:      plan.KindAutomaton,
		Direction: plan.Forward,
		Unit:      rpq.Decompose(clause),
	}
	got, act, err := e.version().execClause(&cp)
	if err != nil {
		t.Fatal(err)
	}
	// Example 1's worked result: {(v7,v5), (v7,v3)}.
	if got.Len() != 2 || !got.Contains(7, 5) || !got.Contains(7, 3) {
		t.Errorf("bypass result = %v, want {(7,5),(7,3)}", got.Sorted())
	}
	if !got.EqualSet(eval.Reference(g, clause)) {
		t.Error("bypass result differs from the reference oracle")
	}
	if act.Pre != -1 || act.Post != -1 {
		t.Errorf("bypass must not materialise side relations: %+v", act)
	}
	if len(e.SharedSummaries()) != 0 {
		t.Error("bypass computed a shared structure")
	}
}
