package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtcshare/internal/eval"
	"rtcshare/internal/fixtures"
	"rtcshare/internal/rpq"
)

// The 2RPQ extension must compose with graph reduction: a Kleene closure
// over a sub-query containing inverse labels still reduces to an RTC.

func TestInverseKleeneAllStrategies(t *testing.T) {
	g := fixtures.Figure1()
	for _, q := range []string{"(b.^b)+", "d.(^c.c)+", "a.(^b)+.b", "(^c)*.d?"} {
		want := eval.Reference(g, rpq.MustParse(q))
		for _, s := range strategies() {
			e := New(g, Options{Strategy: s})
			got, err := e.EvaluateQuery(q)
			if err != nil {
				t.Fatalf("%v %q: %v", s, q, err)
			}
			if !got.Equal(want) {
				t.Errorf("%v: %q = %v, want %v", s, q, got.Sorted(), want.Sorted())
			}
		}
	}
}

func TestInverseRTCIsShared(t *testing.T) {
	g := fixtures.Figure1()
	e := New(g, Options{Strategy: RTCSharing})
	for _, q := range []string{"a.(b.^b)+", "d.(b.^b)+.c"} {
		if _, err := e.EvaluateQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1: (b.^b) must be shared", st.CacheHits, st.CacheMisses)
	}
}

// Property: all engines agree with the reference on random 2RPQs.
func TestEnginesAgreeOn2RPQs(t *testing.T) {
	labels := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := fixtures.RandomGraph(rng, 1+rng.Intn(10), rng.Intn(25), labels)
		e := rpq.RandomExpr2RPQ(rng, labels, 3)
		want := eval.Reference(g, e)
		for _, s := range strategies() {
			eng := New(g, Options{Strategy: s})
			got, err := eng.Evaluate(e)
			if err != nil {
				return true // DNF explosion guard
			}
			if !got.Equal(want) {
				t.Logf("strategy=%v expr=%q", s, e)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
