package shard

import (
	"fmt"
	"sync"
	"testing"

	"rtcshare/internal/core"
	"rtcshare/internal/datagen"
	"rtcshare/internal/graph"
	"rtcshare/internal/rpq"
)

// TestClusterUpdateQueryStorm is the cluster's -race stress test at 2
// and 4 shards: concurrent batch evaluations (all closing over the
// ingest label, so every update invalidates their structures on every
// shard) race an update stream fanning out under the exclusive
// barrier. The cluster-epoch machinery must hold:
//
//   - every batch and update succeeds;
//   - every batch reports one epoch, and it is one the cluster reached;
//   - coordinator and shards leave the storm in epoch lockstep;
//   - CrossEpochHits summed over every engine stays exactly zero.
func TestClusterUpdateQueryStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test skipped in -short")
	}
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 128, Edges: 512, Labels: 4, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			cluster := New(g, Options{Shards: shards})
			queries := []rpq.Expr{
				rpq.MustParse("l3+"),
				rpq.MustParse("l0.l3+"),
				rpq.MustParse("l3+.l1"),
				rpq.MustParse("(l2.l3)+"),
				rpq.MustParse("l0.(l3)+.l2"),
				rpq.MustParse("l3*.l0"),
			}
			const (
				queriers     = 6
				perQuerier   = 15
				updateRounds = 20
			)

			var (
				wg   sync.WaitGroup
				errc = make(chan error, queriers+1)
			)

			// The mutator: insert-only ingest on l3, the label every query
			// closes over.
			wg.Add(1)
			go func() {
				defer wg.Done()
				state := uint64(1)
				for r := 0; r < updateRounds; r++ {
					var ups []core.GraphUpdate
					for i := 0; i < 8; i++ {
						state = state*6364136223846793005 + 1442695040888963407
						src := graph.VID(state % 128)
						dst := graph.VID((state >> 32) % 128)
						ups = append(ups, core.InsertEdge(src, "l3", dst))
					}
					if _, err := cluster.ApplyUpdates(ups); err != nil {
						errc <- fmt.Errorf("update round %d: %w", r, err)
						return
					}
				}
			}()

			for c := 0; c < queriers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < perQuerier; i++ {
						batch := queries[(c+i)%len(queries) : (c+i)%len(queries)+1]
						rels, epoch, err := cluster.EvaluateBatchParallelRelCtx(nil, batch, 2, nil)
						if err != nil {
							errc <- fmt.Errorf("querier %d batch %d: %w", c, i, err)
							return
						}
						if len(rels) != 1 || rels[0] == nil {
							errc <- fmt.Errorf("querier %d batch %d: bad result shape", c, i)
							return
						}
						if epoch > updateRounds {
							errc <- fmt.Errorf("querier %d batch %d: epoch %d beyond the %d rounds", c, i, epoch, updateRounds)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			want := cluster.coord.Epoch()
			for i, sh := range cluster.shards {
				if got := sh.Epoch(); got != want {
					t.Fatalf("shard %d epoch %d, coordinator %d after storm", i, got, want)
				}
			}
			if xe := cluster.CrossEpochHits(); xe != 0 {
				t.Fatalf("CrossEpochHits = %d under update/query storm, want 0", xe)
			}
		})
	}
}
