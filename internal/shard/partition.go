// Package shard implements a label-partitioned, in-process cluster of
// engine shards behind one coordinator. The coordinator exposes the same
// evaluation surface the HTTP server consumes (internal/server.Engine);
// each clause of a planned query decomposes as Pre ⋈ R+ ⋈ R_G ⋈ Post,
// and the coordinator scatters the closure-structure and sub-relation
// work of each component to the shard owning that component's label set,
// gathers the sealed columnar relations, and runs the anchor join
// locally. Updates fan out to every engine under a cluster-epoch
// barrier, so all engines advance epochs in lockstep and no batch mixes
// shard epochs — the single-engine epoch-pinning invariant, now
// cross-shard. See DESIGN.md §14.
package shard

import (
	"hash/fnv"

	"rtcshare/internal/rpq"
)

// Partitioner assigns ownership of a sub-expression to one of n shards
// by the set of edge labels the sub-expression mentions. Ownership is
// resolved at the clause-decomposition boundary: the shard owning a
// component's labels builds and caches that component's closure
// structures and sealed relations, so the cluster splits structure
// memory and build work instead of replicating it. Implementations must
// be deterministic and safe for concurrent use.
type Partitioner interface {
	// Shard returns the owning shard index in [0, n) for a sorted,
	// de-duplicated label set. n is always ≥ 1; an empty label set (an
	// epsilon-only sub-expression) must still map deterministically.
	Shard(labels []string, n int) int
}

// HashPartitioner is the default Partitioner: FNV-1a over the
// NUL-joined label fingerprint, modulo the shard count. Distinct label
// sets spread uniformly; the same set always lands on the same shard,
// which is what makes the shard-side caches effective.
type HashPartitioner struct{}

// Shard implements Partitioner.
func (HashPartitioner) Shard(labels []string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	for _, l := range labels {
		h.Write([]byte(l))
		h.Write([]byte{0})
	}
	return int(h.Sum32() % uint32(n))
}

// owner resolves the shard owning expr's label set. rpq.Labels already
// returns the sorted distinct set, which keeps the fingerprint
// canonical.
func (c *Cluster) owner(expr rpq.Expr) int {
	return c.part.Shard(rpq.Labels(expr), len(c.shards))
}
