package shard

import (
	"context"
	"math/rand"
	"testing"

	"rtcshare/internal/core"
	"rtcshare/internal/datagen"
	"rtcshare/internal/eval"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
)

// The sharded half of the differential streaming suite: a cluster's
// stream, ASK and witness surface must agree with the coordinator's
// sealed evaluation at every shard count, across live update batches,
// with the cross-epoch tripwire at zero.

func drain(t *testing.T, s *core.ResultStream, bufSize int) []pairs.Pair {
	t.Helper()
	defer s.Close()
	var out []pairs.Pair
	buf := make([]pairs.Pair, bufSize)
	for {
		n, done, err := s.Next(buf)
		if err != nil {
			t.Fatalf("stream Next: %v", err)
		}
		out = append(out, buf[:n]...)
		if done {
			return out
		}
	}
}

func samePairs(got, want []pairs.Pair) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestClusterStreamMatchesSealed(t *testing.T) {
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 56, Edges: 196, Labels: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	queries := []rpq.Expr{
		rpq.MustParse("l0+"),
		rpq.MustParse("l0+.l1"),
		rpq.MustParse("l1.l0*.l2?"),
		rpq.MustParse("l2|^l0+"),
	}
	for _, shards := range []int{1, 2} {
		cluster := New(g, Options{Shards: shards})
		sealedOracle := New(g, Options{Shards: shards})
		rng := rand.New(rand.NewSource(int64(shards) * 7))
		for batch := 0; batch < 3; batch++ {
			for qi, q := range queries {
				want, err := sealedOracle.EvaluateRel(q)
				if err != nil {
					t.Fatalf("shards=%d: sealed %q: %v", shards, q, err)
				}
				wantPairs := want.Sorted()

				s, err := cluster.OpenStream(context.Background(), q, core.StreamOptions{})
				if err != nil {
					t.Fatalf("shards=%d: open %q: %v", shards, q, err)
				}
				got := drain(t, s, 3+qi*5)
				if !samePairs(got, wantPairs) {
					t.Fatalf("shards=%d batch %d: %q: cluster stream %d pairs != sealed %d pairs",
						shards, batch, q, len(got), len(wantPairs))
				}

				// ASK and witness agree with the sealed answer.
				found, _, err := cluster.Ask(context.Background(), q)
				if err != nil {
					t.Fatalf("shards=%d: ask %q: %v", shards, q, err)
				}
				if found != (want.Len() > 0) {
					t.Fatalf("shards=%d: ask %q = %v, sealed %d pairs", shards, q, found, want.Len())
				}
				if len(wantPairs) > 0 {
					p := wantPairs[len(wantPairs)/2]
					if _, ok, err := cluster.Witness(context.Background(), q, p.Src, p.Dst); err != nil || !ok {
						t.Fatalf("shards=%d: witness %q (%d,%d) = (%v, %v)", shards, q, p.Src, p.Dst, ok, err)
					}
				}
			}

			// Mutate both cluster and oracle identically, re-check next round.
			var updates []core.GraphUpdate
			for i := 0; i < 8; i++ {
				updates = append(updates, core.InsertEdge(
					graph.VID(rng.Intn(56)), []string{"l0", "l1", "l2"}[rng.Intn(3)], graph.VID(rng.Intn(56))))
			}
			if _, err := cluster.ApplyUpdates(updates); err != nil {
				t.Fatalf("shards=%d: cluster updates: %v", shards, err)
			}
			if _, err := sealedOracle.ApplyUpdates(updates); err != nil {
				t.Fatalf("shards=%d: oracle updates: %v", shards, err)
			}
		}
		if hits := cluster.CrossEpochHits(); hits != 0 {
			t.Fatalf("shards=%d: CrossEpochHits = %d", shards, hits)
		}
	}
}

// TestClusterStreamPinnedAcrossUpdates: a stream opened before an
// update fan-out drains the pinned epoch while the cluster advances.
func TestClusterStreamPinnedAcrossUpdates(t *testing.T) {
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 48, Edges: 144, Labels: 3, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	cluster := New(g, Options{Shards: 2})
	q := rpq.MustParse("l0+.l1?")
	g0 := cluster.Graph()
	want := eval.Reference(g0, q).Sorted()

	s, err := cluster.OpenStream(context.Background(), q, core.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.ApplyUpdates([]core.GraphUpdate{
		core.InsertEdge(1, "l0", 2),
		core.InsertEdge(2, "l1", 3),
	}); err != nil {
		t.Fatal(err)
	}
	got := drain(t, s, 9)
	if !samePairs(got, want) {
		t.Fatalf("pinned cluster stream diverges: %d pairs vs reference %d", len(got), len(want))
	}
	fresh, err := cluster.OpenStream(context.Background(), q, core.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	freshGot := drain(t, fresh, 9)
	freshWant := eval.Reference(cluster.Graph(), q).Sorted()
	if !samePairs(freshGot, freshWant) {
		t.Fatalf("post-update cluster stream diverges: %d pairs vs reference %d", len(freshGot), len(freshWant))
	}
	if hits := cluster.CrossEpochHits(); hits != 0 {
		t.Fatalf("CrossEpochHits = %d", hits)
	}
}
