package shard

import (
	"testing"

	"rtcshare/internal/core"
	"rtcshare/internal/datagen"
	"rtcshare/internal/rpq"
)

// TestClusterSurface pins the cluster's engine-shaped accessor surface:
// the pieces the server and the benchmarks consume beyond the batch
// entry point — fast path, planning, explain, stats folding, forks.
func TestClusterSurface(t *testing.T) {
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 64, Edges: 256, Labels: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	cluster := New(g, Options{Shards: 2, Engine: core.Options{Planner: core.PlannerCostBased}})
	if n := cluster.NumShards(); n != 2 {
		t.Fatalf("NumShards = %d, want 2", n)
	}
	if cluster.Coordinator() == nil || cluster.Cache() == nil {
		t.Fatal("coordinator or its cache missing")
	}
	if e := cluster.Epoch(); e != 0 {
		t.Fatalf("fresh cluster epoch = %d, want 0", e)
	}
	if opts := cluster.Options(); opts.Planner != core.PlannerCostBased {
		t.Fatalf("Options lost the engine configuration: %+v", opts)
	}

	q := rpq.MustParse("l0.l2+")
	rel, err := cluster.EvaluateRel(q)
	if err != nil {
		t.Fatal(err)
	}

	// The non-blocking fast path answers from the coordinator-local
	// top-level memo at the epoch the evaluation pinned.
	cached, epoch, ok := cluster.CachedResult(q)
	if !ok || epoch != 0 {
		t.Fatalf("CachedResult after evaluation: ok=%v epoch=%d", ok, epoch)
	}
	if !relEqual(cached, rel) {
		t.Fatal("CachedResult differs from the evaluation that populated it")
	}

	// Admission classification plans without the barrier; the sunk-cost
	// probe rides the scatter seam to the owning shards.
	if _, _, err := cluster.QueryCost(q); err != nil {
		t.Fatalf("QueryCost: %v", err)
	}

	// Stats folds the coordinator's split with every shard's.
	if s := cluster.Stats(); s.Queries < 1 {
		t.Fatalf("folded Stats.Queries = %d after an evaluation", s.Queries)
	}
	if factor, samples := cluster.CostCalibration(); factor <= 0 || samples < 0 {
		t.Fatalf("CostCalibration = %v, %d", factor, samples)
	}

	if p, err := cluster.ExplainQuery("l0.l2+"); err != nil || p == nil {
		t.Fatalf("ExplainQuery: plan=%v err=%v", p, err)
	}
	if p, err := cluster.ExplainAnalyzeQuery("l0.l2+"); err != nil || p == nil {
		t.Fatalf("ExplainAnalyzeQuery: plan=%v err=%v", p, err)
	}

	// A fork carries the scatter hook and answers identically outside
	// the barrier (the coalescer's error-fallback path).
	frel, err := cluster.Fork().EvaluateRel(q)
	if err != nil {
		t.Fatal(err)
	}
	if !relEqual(frel, rel) {
		t.Fatal("fork result differs from the cluster's")
	}
}
