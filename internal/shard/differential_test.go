package shard

import (
	"math/rand"
	"testing"

	"rtcshare/internal/core"
	"rtcshare/internal/datagen"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
)

// TestHashPartitioner: the default partitioner is deterministic, stays
// in range, degenerates to shard 0 for trivial clusters, and actually
// spreads distinct label sets across a 4-shard cluster.
func TestHashPartitioner(t *testing.T) {
	p := HashPartitioner{}
	labels := [][]string{
		nil, {"a"}, {"b"}, {"a", "b"}, {"a", "c"}, {"b", "c"}, {"l0"},
		{"l1"}, {"l2"}, {"l0", "l1"}, {"l0", "l2"}, {"l1", "l2"}, {"l0", "l1", "l2"},
	}
	for _, ls := range labels {
		if got := p.Shard(ls, 1); got != 0 {
			t.Fatalf("Shard(%v, 1) = %d, want 0", ls, got)
		}
		if got := p.Shard(ls, 0); got != 0 {
			t.Fatalf("Shard(%v, 0) = %d, want 0", ls, got)
		}
		for _, n := range []int{2, 4, 7} {
			a, b := p.Shard(ls, n), p.Shard(ls, n)
			if a != b {
				t.Fatalf("Shard(%v, %d) not deterministic: %d vs %d", ls, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("Shard(%v, %d) = %d out of range", ls, n, a)
			}
		}
	}
	hit := make(map[int]bool)
	for _, ls := range labels {
		hit[p.Shard(ls, 4)] = true
	}
	if len(hit) < 3 {
		t.Fatalf("13 distinct label sets landed on only %d of 4 shards: %v", len(hit), hit)
	}
}

// relEqual compares two sealed relations pair for pair.
func relEqual(a, b *pairs.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	as, bs := a.Sorted(), b.Sorted()
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestClusterDifferentialUpdates extends the engine differential oracle
// over shard counts: on a random RMAT graph walking a shared random
// insert/delete script, a cluster at 1, 2 and 4 shards must return,
// pair for pair, what a long-lived single engine (incremental path) and
// a fresh single engine rebuilt over the updated graph return — crossed
// over layouts, closure algorithms, planners, strategies and the
// rebuild-on-update policy. The cross-epoch tripwire must stay zero on
// every engine of every cluster.
func TestClusterDifferentialUpdates(t *testing.T) {
	configs := []core.Options{
		{}, // columnar, BFS closure, heuristic planner
		{Layout: core.LayoutMapSet},
		{TCAlgo: rtc.BitsetClosure},
		{Planner: core.PlannerCostBased, TCAlgo: rtc.PurdomClosure},
		{Strategy: core.FullSharing},
		{DisableIncremental: true},
	}
	queries := []rpq.Expr{
		rpq.MustParse("l0+"),
		rpq.MustParse("l0+.l1"),
		rpq.MustParse("l1.l0*.l2?"),
		rpq.MustParse("(l0.l1)+"),
		rpq.MustParse("l2|^l0+"),
	}

	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 56, Edges: 168, Labels: 3, Seed: 310})
	if err != nil {
		t.Fatal(err)
	}

	// One shared script so every (config, shard count) cell sees the same
	// insert/delete sequence, deletes drawn from existing edges when
	// possible.
	rng := rand.New(rand.NewSource(410))
	labels := []string{"l0", "l1", "l2"}
	var script [][]core.GraphUpdate
	for b := 0; b < 4; b++ {
		var batch []core.GraphUpdate
		for i := 0; i < 6; i++ {
			src, dst := graph.VID(rng.Intn(56)), graph.VID(rng.Intn(56))
			label := labels[rng.Intn(len(labels))]
			if rng.Intn(5) == 0 {
				if lid, ok := g.Dict().Lookup(label); ok {
					if succs := g.Successors(src, lid); len(succs) > 0 {
						dst = succs[rng.Intn(len(succs))]
					}
				}
				batch = append(batch, core.DeleteEdge(src, label, dst))
				continue
			}
			batch = append(batch, core.InsertEdge(src, label, dst))
		}
		script = append(script, batch)
	}

	for _, opts := range configs {
		for _, shards := range []int{1, 2, 4} {
			cluster := New(g, Options{Shards: shards, Engine: opts})
			single := core.New(g, opts)
			// Warm both sides so the update fan-out has structures to
			// carry, patch and drop on every engine.
			for _, q := range queries {
				if _, err := cluster.EvaluateRel(q); err != nil {
					t.Fatalf("%+v shards=%d: warmup %q: %v", opts, shards, q, err)
				}
				if _, err := single.EvaluateRel(q); err != nil {
					t.Fatalf("%+v: single warmup %q: %v", opts, q, err)
				}
			}
			for b, batch := range script {
				if _, err := cluster.ApplyUpdates(batch); err != nil {
					t.Fatalf("%+v shards=%d batch %d: cluster: %v", opts, shards, b, err)
				}
				if _, err := single.ApplyUpdates(batch); err != nil {
					t.Fatalf("%+v batch %d: single: %v", opts, b, err)
				}
				rebuilt := core.New(cluster.Graph(), opts)
				for _, q := range queries {
					got, err := cluster.EvaluateRel(q)
					if err != nil {
						t.Fatalf("%+v shards=%d batch %d: cluster %q: %v", opts, shards, b, q, err)
					}
					inc, err := single.EvaluateRel(q)
					if err != nil {
						t.Fatalf("%+v batch %d: single %q: %v", opts, b, q, err)
					}
					fresh, err := rebuilt.EvaluateRel(q)
					if err != nil {
						t.Fatalf("%+v batch %d: rebuilt %q: %v", opts, b, q, err)
					}
					if !relEqual(got, inc) {
						t.Errorf("%+v shards=%d batch %d: %q: cluster %d pairs, incremental single %d",
							opts, shards, b, q, got.Len(), inc.Len())
					}
					if !relEqual(got, fresh) {
						t.Errorf("%+v shards=%d batch %d: %q: cluster %d pairs, rebuilt single %d",
							opts, shards, b, q, got.Len(), fresh.Len())
					}
				}
				want := cluster.coord.Epoch()
				for i, sh := range cluster.shards {
					if got := sh.Epoch(); got != want {
						t.Fatalf("%+v shards=%d batch %d: shard %d epoch %d, coordinator %d",
							opts, shards, b, i, got, want)
					}
				}
			}
			if xe := cluster.CrossEpochHits(); xe != 0 {
				t.Errorf("%+v shards=%d: CrossEpochHits = %d, want 0", opts, shards, xe)
			}
		}
	}
}

// TestClusterBatchMatchesSingle: the batch-parallel entry point — the
// surface the server's coalescer drives — agrees with a single engine
// query for query, and the scatter counters show structure work was
// actually routed to the shards.
func TestClusterBatchMatchesSingle(t *testing.T) {
	g, err := datagen.RMAT(datagen.RMATConfig{Vertices: 64, Edges: 256, Labels: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	queries := []rpq.Expr{
		rpq.MustParse("l0+"), rpq.MustParse("l1+"), rpq.MustParse("l2+.l3"),
		rpq.MustParse("l3.(l0.l1)+"), rpq.MustParse("l2*"),
	}
	single := core.New(g, core.Options{})
	cluster := New(g, Options{Shards: 4})
	rels, _, err := cluster.EvaluateBatchParallelRelCtx(nil, queries, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := single.EvaluateRel(q)
		if err != nil {
			t.Fatal(err)
		}
		if !relEqual(rels[i], want) {
			t.Errorf("%q: cluster %d pairs, single %d", q, rels[i].Len(), want.Len())
		}
	}
	var scattered int64
	for _, ss := range cluster.ShardStats() {
		scattered += ss.RTCRequests + ss.ClosureRequests + ss.RelationRequests
		if ss.Declined != 0 {
			t.Errorf("shard %d declined %d requests under the barrier, want 0", ss.Shard, ss.Declined)
		}
	}
	if scattered == 0 {
		t.Error("no scatter traffic reached any shard; the hook is not wired")
	}
}
