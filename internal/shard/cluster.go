package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"rtcshare/internal/core"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
	"rtcshare/internal/tc"
)

// Options configure a Cluster.
type Options struct {
	// Shards is the number of engine shards; values ≤ 1 build a
	// one-shard cluster (the scatter seam still runs, which is the
	// honest single-shard baseline of the shard benchmark).
	Shards int
	// Partitioner assigns label sets to shards. Nil uses
	// HashPartitioner.
	Partitioner Partitioner
	// Engine configures the coordinator and every shard identically.
	// Identical options are required: the differential guarantee is
	// that any shard computes exactly what the coordinator would have.
	Engine core.Options
}

// Cluster is a label-partitioned, in-process cluster: one coordinator
// engine whose scatter hook routes shared-structure and sub-relation
// work to N engine shards, each with a private SharedCache over the same
// immutable graph. It implements the evaluation surface the HTTP server
// consumes, so rpqd serves a Cluster exactly like a single engine.
//
// Concurrency: evaluations take the cluster-epoch barrier shared;
// ApplyUpdates takes it exclusive and fans the batch out to the
// coordinator and every shard, so all engines advance epochs in
// lockstep and no evaluation overlaps a half-advanced cluster. Paths
// that evaluate outside the barrier (the coalescer's error-fallback
// forks) stay correct through the scatter seam's epoch guard: a shard
// that cannot serve the pinned epoch declines and the coordinator
// computes locally.
type Cluster struct {
	opts   Options
	part   Partitioner
	coord  *core.Engine
	shards []*core.Engine

	// barrier is the cluster-epoch barrier: RLock around evaluations,
	// Lock around the update fan-out.
	barrier sync.RWMutex

	counters []scatterCounters
}

// scatterCounters tallies the scatter traffic one shard served.
type scatterCounters struct {
	rtc      atomic.Int64
	closure  atomic.Int64
	relation atomic.Int64
	declined atomic.Int64
}

// Stats is one shard's observability row: its cache counters (including
// the CrossEpochHits tripwire) plus the scatter traffic routed to it.
// The server's /metrics endpoint publishes one row per shard.
type Stats struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Cache is the shard's SharedCache counter snapshot.
	Cache core.CacheCounters `json:"cache"`
	// RTCRequests counts RTC structure requests scattered to this shard.
	RTCRequests int64 `json:"rtc_requests"`
	// ClosureRequests counts full-closure requests scattered to this
	// shard (FullSharing strategy).
	ClosureRequests int64 `json:"closure_requests"`
	// RelationRequests counts sub-relation evaluations scattered to this
	// shard.
	RelationRequests int64 `json:"relation_requests"`
	// Declined counts requests this shard refused because its epoch did
	// not match the coordinator's pinned epoch; the coordinator computed
	// those locally. Nonzero values are expected only from evaluations
	// running outside the cluster-epoch barrier.
	Declined int64 `json:"declined"`
}

// New returns a Cluster over g with opts.Shards engine shards. The
// coordinator and the shards each get a private SharedCache; the graph
// is shared immutably until ApplyUpdates fans out a new version.
func New(g *graph.Graph, opts Options) *Cluster {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	part := opts.Partitioner
	if part == nil {
		part = HashPartitioner{}
	}
	c := &Cluster{
		opts:     opts,
		part:     part,
		coord:    core.New(g, opts.Engine),
		shards:   make([]*core.Engine, n),
		counters: make([]scatterCounters, n),
	}
	for i := range c.shards {
		c.shards[i] = core.New(g, opts.Engine)
	}
	c.coord.SetScatterHook((*router)(c))
	return c
}

// router is the core.ScatterHook face of a Cluster, kept as a distinct
// type so the hook methods do not widen the Cluster's public API.
type router Cluster

func (r *router) cluster() *Cluster { return (*Cluster)(r) }

// RTC implements core.ScatterHook.
func (r *router) RTC(ctx context.Context, epoch uint64, expr rpq.Expr) (*rtc.RTC, core.SharedSummary, bool, bool, error) {
	c := r.cluster()
	i := c.owner(expr)
	c.counters[i].rtc.Add(1)
	structure, sum, hit, ok, err := c.shards[i].ScatterRTC(ctx, epoch, expr)
	if !ok && err == nil {
		c.counters[i].declined.Add(1)
	}
	return structure, sum, hit, ok, err
}

// FullClosure implements core.ScatterHook.
func (r *router) FullClosure(ctx context.Context, epoch uint64, expr rpq.Expr) (*tc.Closure, core.SharedSummary, bool, bool, error) {
	c := r.cluster()
	i := c.owner(expr)
	c.counters[i].closure.Add(1)
	closure, sum, hit, ok, err := c.shards[i].ScatterFullClosure(ctx, epoch, expr)
	if !ok && err == nil {
		c.counters[i].declined.Add(1)
	}
	return closure, sum, hit, ok, err
}

// SubRelation implements core.ScatterHook.
func (r *router) SubRelation(ctx context.Context, epoch uint64, q rpq.Expr) (*pairs.Relation, bool, error) {
	c := r.cluster()
	i := c.owner(q)
	c.counters[i].relation.Add(1)
	rel, ok, err := c.shards[i].ScatterSubRelation(ctx, epoch, q)
	if !ok && err == nil {
		c.counters[i].declined.Add(1)
	}
	return rel, ok, err
}

// StructureCached implements core.ScatterHook.
func (r *router) StructureCached(epoch uint64, expr rpq.Expr) bool {
	c := r.cluster()
	return c.shards[c.owner(expr)].ScatterStructureCached(epoch, expr)
}

// NumShards returns the number of engine shards.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Coordinator returns the coordinator engine — the engine whose cache
// holds top-level results and whose forks carry the scatter hook. Tests
// and benchmarks use it; serving goes through the Cluster's own surface.
func (c *Cluster) Coordinator() *core.Engine { return c.coord }

// Epoch returns the cluster's graph epoch (the coordinator's; the
// barrier keeps every shard in lockstep with it).
func (c *Cluster) Epoch() uint64 { return c.coord.Epoch() }

// Graph returns the cluster's current graph version.
func (c *Cluster) Graph() *graph.Graph { return c.coord.Graph() }

// Options returns the engine options the cluster was built with.
func (c *Cluster) Options() core.Options { return c.opts.Engine }

// Stats returns the cluster-wide timing split: the coordinator's Stats
// folded with every shard's, so the three-part accounting covers the
// work wherever it ran.
func (c *Cluster) Stats() core.Stats {
	s := c.coord.Stats()
	for _, sh := range c.shards {
		s.Add(sh.Stats())
	}
	return s
}

// Cache returns the coordinator's SharedCache — the region holding
// top-level results. Per-shard cache counters are in ShardStats.
func (c *Cluster) Cache() *core.SharedCache { return c.coord.Cache() }

// CostCalibration returns the coordinator planner's recalibration state.
func (c *Cluster) CostCalibration() (factor float64, samples int) {
	return c.coord.CostCalibration()
}

// ShardStats snapshots every shard's cache counters and scatter
// traffic, in shard order.
func (c *Cluster) ShardStats() []Stats {
	out := make([]Stats, len(c.shards))
	for i, sh := range c.shards {
		out[i] = Stats{
			Shard:            i,
			Cache:            sh.Cache().Counters(),
			RTCRequests:      c.counters[i].rtc.Load(),
			ClosureRequests:  c.counters[i].closure.Load(),
			RelationRequests: c.counters[i].relation.Load(),
			Declined:         c.counters[i].declined.Load(),
		}
	}
	return out
}

// CrossEpochHits sums the cross-epoch cache tripwire over the
// coordinator and every shard. Zero is the invariant the shard
// benchmark and the storm tests enforce: no evaluation ever consumed a
// structure from a different graph epoch.
func (c *Cluster) CrossEpochHits() int64 {
	total := c.coord.Cache().Counters().CrossEpochHits
	for _, sh := range c.shards {
		total += sh.Cache().Counters().CrossEpochHits
	}
	return total
}

// CachedResult is the coordinator's non-blocking fast path; top-level
// results live coordinator-local, so no barrier or scatter is involved.
func (c *Cluster) CachedResult(q rpq.Expr) (*pairs.Relation, uint64, bool) {
	return c.coord.CachedResult(q)
}

// QueryCost plans q on the coordinator; the planner's sunk-cost probe
// consults the owning shards' caches through the scatter seam. It does
// not take the barrier — admission classification must not block behind
// an update fan-out, and the epoch guard keeps a mid-update probe
// merely conservative (a moved structure reads as not-cached).
func (c *Cluster) QueryCost(q rpq.Expr) (cost float64, cheap bool, err error) {
	return c.coord.QueryCost(q)
}

// EvaluateRelTimedCtx evaluates one query through the coordinator under
// the shared barrier.
func (c *Cluster) EvaluateRelTimedCtx(ctx context.Context, q rpq.Expr, st *core.StageTimer) (*pairs.Relation, uint64, error) {
	c.barrier.RLock()
	defer c.barrier.RUnlock()
	return c.coord.EvaluateRelTimedCtx(ctx, q, st)
}

// EvaluateBatchParallelRelCtx is the batch demux entry point: the whole
// batch runs under the shared barrier, pinned to one cluster epoch, with
// structure and sub-relation work scattered to the owning shards.
func (c *Cluster) EvaluateBatchParallelRelCtx(ctx context.Context, qs []rpq.Expr, workers int, timers []*core.StageTimer) ([]*pairs.Relation, uint64, error) {
	c.barrier.RLock()
	defer c.barrier.RUnlock()
	return c.coord.EvaluateBatchParallelRelCtx(ctx, qs, workers, timers)
}

// EvaluateRel evaluates one query under the shared barrier (the
// single-engine convenience form, used by tests and benchmarks).
func (c *Cluster) EvaluateRel(q rpq.Expr) (*pairs.Relation, error) {
	rel, _, err := c.EvaluateRelTimedCtx(nil, q, nil)
	return rel, err
}

// ExplainQuery plans q on the coordinator without executing it.
func (c *Cluster) ExplainQuery(q string) (*core.Plan, error) {
	c.barrier.RLock()
	defer c.barrier.RUnlock()
	return c.coord.ExplainQuery(q)
}

// ExplainAnalyzeQuery plans and executes q on the coordinator (under
// the barrier: analysis evaluates for real, scattering like any query).
func (c *Cluster) ExplainAnalyzeQuery(q string) (*core.Plan, error) {
	c.barrier.RLock()
	defer c.barrier.RUnlock()
	return c.coord.ExplainAnalyzeQuery(q)
}

// Fork returns a coordinator fork. The fork carries the scatter hook but
// evaluates outside the barrier — the coalescer's error-fallback path —
// so its scatters may be declined mid-update and computed locally, which
// the epoch guard keeps correct.
func (c *Cluster) Fork() *core.Engine { return c.coord.Fork() }

// OpenStream opens a pull-based result stream through the coordinator.
// Only the open itself runs under the shared barrier: OpenStream
// resolves every shared input eagerly against the pinned engine version,
// so the returned stream drains immutable state and an update fan-out
// can proceed while clients are still paging. The stream stays
// byte-identical to a sealed evaluation at its pinned epoch regardless.
func (c *Cluster) OpenStream(ctx context.Context, q rpq.Expr, opts core.StreamOptions) (*core.ResultStream, error) {
	c.barrier.RLock()
	defer c.barrier.RUnlock()
	return c.coord.OpenStream(ctx, q, opts)
}

// Ask probes result existence through the coordinator under the shared
// barrier, short-circuiting at the first pair.
func (c *Cluster) Ask(ctx context.Context, q rpq.Expr) (bool, uint64, error) {
	c.barrier.RLock()
	defer c.barrier.RUnlock()
	return c.coord.Ask(ctx, q)
}

// AskCounted is Ask with the rows-scanned instrumentation counter.
func (c *Cluster) AskCounted(ctx context.Context, q rpq.Expr) (bool, uint64, int64, error) {
	c.barrier.RLock()
	defer c.barrier.RUnlock()
	return c.coord.AskCounted(ctx, q)
}

// Witness reconstructs one shortest label-path witness through the
// coordinator under the shared barrier.
func (c *Cluster) Witness(ctx context.Context, q rpq.Expr, src, dst graph.VID) (core.WitnessPath, bool, error) {
	c.barrier.RLock()
	defer c.barrier.RUnlock()
	return c.coord.Witness(ctx, q, src, dst)
}

// ApplyUpdates fans one update batch out to the coordinator and every
// shard under the exclusive barrier. All engines hold identical graphs
// and validate identically, apply the identical effective delta, and
// advance their (independent) cache epochs by the same amount — so the
// cluster leaves the barrier in lockstep, which the post-condition
// verifies. The returned result is the coordinator's.
func (c *Cluster) ApplyUpdates(updates []core.GraphUpdate) (core.UpdateResult, error) {
	c.barrier.Lock()
	defer c.barrier.Unlock()

	res, err := c.coord.ApplyUpdates(updates)
	if err != nil {
		// Validation rejects before mutating, and every shard would
		// reject identically; the cluster is still consistent.
		return res, err
	}

	var wg sync.WaitGroup
	errs := make([]error, len(c.shards))
	for i, sh := range c.shards {
		wg.Add(1)
		go func(i int, sh *core.Engine) {
			defer wg.Done()
			_, errs[i] = sh.ApplyUpdates(updates)
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return res, fmt.Errorf("shard: shard %d diverged applying updates: %w", i, err)
		}
	}
	want := c.coord.Epoch()
	for i, sh := range c.shards {
		if got := sh.Epoch(); got != want {
			return res, fmt.Errorf("shard: shard %d at epoch %d, coordinator at %d after update fan-out", i, got, want)
		}
	}
	return res, nil
}
