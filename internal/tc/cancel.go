package tc

import "rtcshare/internal/graph"

// Checkpoint is a cooperative-cancellation probe threaded into closure
// construction: the algorithms call it with an approximate count of
// rows (closure pairs, successor-set words) produced since the last
// call, and a non-nil return aborts the build with that error. The
// engine layer passes an amortized context poll; nil means
// uncancellable and costs nothing.
//
// A Checkpoint is invoked only from the goroutine that called the
// closure function — the worker-parallel sparse-BFS path of the bitset
// hybrid checks at its phase boundaries instead of inside the workers —
// so implementations need not be safe for concurrent use.
type Checkpoint func(rows int) error

// BFSCheck is BFS with a cancellation checkpoint consulted once per
// source vertex.
func BFSCheck(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	return bfs(d, check)
}

// PurdomCheck is Purdom with a cancellation checkpoint consulted once
// per condensation component and once per expanded successor list.
func PurdomCheck(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	return purdom(d, check)
}

// NuutilaCheck is Nuutila with a cancellation checkpoint consulted once
// per component and once per expanded successor list.
func NuutilaCheck(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	return nuutila(d, check)
}

// BitsetTopoCheck is BitsetTopo with a cancellation checkpoint: the
// dense word-parallel DP checks once per row, the worker-parallel
// sparse path at its phase boundaries (the checkpoint contract is
// single-goroutine), and the expansion once per successor list.
func BitsetTopoCheck(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	return bitsetTopo(d, check)
}

// checkRows consults a possibly-nil checkpoint.
func checkRows(check Checkpoint, rows int) error {
	if check == nil {
		return nil
	}
	return check(rows)
}
