// Incremental closure maintenance. A DynClosure is the mutable working
// form of a Closure while a batch of edge inserts is patched in:
// reachability is held as per-vertex hash sets in both directions, so an
// insert can walk "everything that reaches u" and "everything reachable
// from w" without re-running a closure algorithm, and Seal freezes the
// result back into an immutable Closure. This is the Italiano-style
// on-line transitive closure update: inserting the edge (u, w) adds
// exactly the pairs {p ⇝ u} × {w ⇝ t}, and a source that already
// reaches w is skipped wholesale because closure transitivity guarantees
// it already has every target.
//
// DynClosure works at whatever vertex granularity its source Closure
// does: internal/rtc patches TC(Ḡ_R) at SCC granularity (layering SCC
// merges on top via the exported From/Into sets), while FullSharing's
// R+_G = TC(G_R) is patched at vertex granularity by Closure.InsertEdges
// directly — plain reachability needs no merge handling, a
// cycle-creating insert is just more pairs.
package tc

import (
	"slices"

	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
)

// DynClosure is a transitive closure under mutation. The source Closure
// is never modified; Seal produces a fresh immutable Closure. Not safe
// for concurrent use.
type DynClosure struct {
	n int
	// From[v] / Into[v] are v's forward and backward reach sets; nil
	// means empty. Exported so internal/rtc can perform the SCC-merge row
	// surgery its SID-level patching needs; AddEdge keeps the two sides
	// consistent, and any direct mutation must too. (There is
	// deliberately no live pair counter: the rtc merge surgery rewrites
	// rows wholesale, and Seal/SealRemapped recount from the rows.)
	From, Into []map[graph.VID]struct{}

	// scratch for AddEdge's snapshot of the two product sides.
	srcs, dsts []graph.VID
}

// NewDyn explodes a Closure into its mutable form: O(pairs) map inserts.
func NewDyn(c *Closure) *DynClosure {
	d := &DynClosure{
		n:    c.numVertices,
		From: make([]map[graph.VID]struct{}, c.numVertices),
		Into: make([]map[graph.VID]struct{}, c.numVertices),
	}
	c.Each(func(u, w graph.VID) bool {
		d.addPair(u, w)
		return true
	})
	return d
}

// NumVertices returns the size of the VID space.
func (d *DynClosure) NumVertices() int { return d.n }

// Grow extends the VID space to n vertices with empty reach sets — how
// the SID-level patching accommodates the fresh singleton SCCs minted
// for previously inactive vertices. Shrinking is a no-op.
func (d *DynClosure) Grow(n int) {
	for d.n < n {
		d.From = append(d.From, nil)
		d.Into = append(d.Into, nil)
		d.n++
	}
}

// Has reports whether (u, w) is in the closure.
func (d *DynClosure) Has(u, w graph.VID) bool {
	_, ok := d.From[u][w]
	return ok
}

// addPair inserts (u, w) into both directions, reporting whether it was
// new.
func (d *DynClosure) addPair(u, w graph.VID) bool {
	fu := d.From[u]
	if fu == nil {
		fu = make(map[graph.VID]struct{})
		d.From[u] = fu
	}
	if _, ok := fu[w]; ok {
		return false
	}
	fu[w] = struct{}{}
	iw := d.Into[w]
	if iw == nil {
		iw = make(map[graph.VID]struct{})
		d.Into[w] = iw
	}
	iw[u] = struct{}{}
	return true
}

// AddEdge patches the closure for one inserted edge (u, w): every vertex
// that reaches u (or is u) now reaches everything reachable from w (and
// w itself). Both product sides are snapshotted first, so a
// cycle-creating insert — w already reaching u — needs no special case:
// it simply lands pairs like (u, u).
func (d *DynClosure) AddEdge(u, w graph.VID) {
	if d.Has(u, w) {
		// u already reached w, so by transitivity it (and everything
		// reaching it) already has every target this edge could add.
		return
	}
	d.dsts = append(d.dsts[:0], w)
	for t := range d.From[w] {
		d.dsts = append(d.dsts, t)
	}
	d.srcs = append(d.srcs[:0], u)
	for p := range d.Into[u] {
		d.srcs = append(d.srcs, p)
	}
	for _, p := range d.srcs {
		if p != u && d.Has(p, w) {
			// p's reach set is closed and already contains w, hence every
			// target; skipping it wholesale is what keeps the patch
			// bounded by the genuinely new pairs.
			continue
		}
		for _, t := range d.dsts {
			d.addPair(p, t)
		}
	}
}

// Seal freezes the mutable closure back into an immutable Closure with
// sorted successor lists.
func (d *DynClosure) Seal() *Closure {
	return d.SealRemapped(d.n, nil)
}

// SealRemapped seals onto a renumbered vertex space: row v of the
// dynamic closure becomes row remap[v] of the sealed one, and every
// member is mapped the same way. Rows whose remap entry is negative are
// dropped (they must already be empty — a dead SID after an SCC merge).
// A nil remap is the identity over an n-sized space.
func (d *DynClosure) SealRemapped(n int, remap []int32) *Closure {
	c := &Closure{numVertices: n, succ: make([][]graph.VID, n)}
	for v := range d.From {
		row := d.From[v]
		if len(row) == 0 {
			continue
		}
		nv := graph.VID(v)
		if remap != nil {
			nv = remap[v]
			if nv < 0 {
				continue
			}
		}
		out := make([]graph.VID, 0, len(row))
		for t := range row {
			if remap != nil {
				t = remap[t]
			}
			out = append(out, t)
		}
		slices.Sort(out)
		c.succ[nv] = out
		c.numPairs += len(out)
	}
	return c
}

// InsertEdges returns a new Closure equal to recomputing the closure of
// the source digraph with the given edges added. The receiver is not
// modified, so closures shared immutably across goroutines (the cached
// R+_G structures) stay safe: the patched copy is installed for the new
// graph epoch while old-epoch readers keep the original.
func (c *Closure) InsertEdges(edges []pairs.Pair) *Closure {
	d := NewDyn(c)
	for _, e := range edges {
		d.AddEdge(e.Src, e.Dst)
	}
	return d.Seal()
}

// NumActive counts the vertices incident to at least one closure pair —
// for a closure of G_R this equals |V_R|, since every active vertex of
// G_R has an edge and therefore at least one closure pair in some
// direction. It walks both directions via the lazily built transpose.
func (c *Closure) NumActive() int {
	inv := c.Inverted()
	n := 0
	for v := 0; v < c.numVertices; v++ {
		if len(c.succ[v]) > 0 || len(inv.succ[v]) > 0 {
			n++
		}
	}
	return n
}
