package tc

import (
	"math/rand"
	"testing"

	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
)

// buildDi freezes an edge list into a DiGraph.
func buildDi(n int, edges []pairs.Pair) *graph.DiGraph {
	b := graph.NewDiBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Dst)
	}
	return b.Build()
}

// TestInsertEdgesMatchesRecompute grows random digraphs one insert batch
// at a time and checks after every batch that the incrementally patched
// closure equals a from-scratch BFS closure of the grown graph — the
// update oracle at the tc layer. Batches deliberately mix edge kinds:
// fresh vertices, already-implied pairs, duplicates and cycle-creating
// back edges all occur at these densities.
func TestInsertEdgesMatchesRecompute(t *testing.T) {
	for _, n := range []int{6, 12, 24} {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(900*int64(n) + seed))
			var edges []pairs.Pair
			// Seed graph: a few initial edges, closed from scratch.
			for i := 0; i < n/2; i++ {
				edges = append(edges, pairs.Pair{Src: graph.VID(rng.Intn(n)), Dst: graph.VID(rng.Intn(n))})
			}
			cur := BFS(buildDi(n, edges))

			for batch := 0; batch < 6; batch++ {
				var delta []pairs.Pair
				for i := 0; i < 1+rng.Intn(4); i++ {
					delta = append(delta, pairs.Pair{Src: graph.VID(rng.Intn(n)), Dst: graph.VID(rng.Intn(n))})
				}
				edges = append(edges, delta...)
				prev := cur
				cur = cur.InsertEdges(delta)
				want := BFS(buildDi(n, edges))
				if !cur.Equal(want) {
					t.Fatalf("n=%d seed=%d batch=%d: patched closure %d pairs, recomputed %d",
						n, seed, batch, cur.NumPairs(), want.NumPairs())
				}
				if wantPrev := BFS(buildDi(n, edges[:len(edges)-len(delta)])); !prev.Equal(wantPrev) {
					t.Fatalf("n=%d seed=%d batch=%d: InsertEdges mutated its receiver", n, seed, batch)
				}
				if got, want := cur.NumActive(), buildDi(n, edges).NumActive(); got != want {
					t.Fatalf("n=%d seed=%d batch=%d: NumActive %d, digraph active %d", n, seed, batch, got, want)
				}
			}
		}
	}
}

func TestDynClosureSealRemapped(t *testing.T) {
	// 0→1→2 with row 1 remapped to 0, row 0 to 1, row 2 dropped... rows
	// must be empty to drop, so remap a 3-vertex chain onto a 2-vertex
	// space after verifying vertex 2 has no forward row.
	c := BFS(buildDi(3, []pairs.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}))
	d := NewDyn(c)
	sealed := d.SealRemapped(3, []int32{1, 0, 2})
	if !sealed.Reachable(1, 0) || !sealed.Reachable(1, 2) || !sealed.Reachable(0, 2) {
		t.Fatalf("remapped closure wrong: %v", sealed.succ)
	}
	if sealed.NumPairs() != c.NumPairs() {
		t.Fatalf("remap changed pair count: %d vs %d", sealed.NumPairs(), c.NumPairs())
	}
}
