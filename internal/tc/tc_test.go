package tc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/scc"
)

func digraph(n int, edges [][2]graph.VID) *graph.DiGraph {
	b := graph.NewDiBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// TestPaperExample4 reproduces Example 4: TC(G_{b·c}).
func TestPaperExample4(t *testing.T) {
	gbc := digraph(10, [][2]graph.VID{{2, 4}, {2, 6}, {3, 5}, {4, 2}, {5, 3}})
	want := pairs.FromPairs(
		pairs.Pair{Src: 2, Dst: 2}, pairs.Pair{Src: 2, Dst: 4}, pairs.Pair{Src: 2, Dst: 6},
		pairs.Pair{Src: 3, Dst: 3}, pairs.Pair{Src: 3, Dst: 5},
		pairs.Pair{Src: 4, Dst: 2}, pairs.Pair{Src: 4, Dst: 4}, pairs.Pair{Src: 4, Dst: 6},
		pairs.Pair{Src: 5, Dst: 3}, pairs.Pair{Src: 5, Dst: 5},
	)
	for name, algo := range algorithms() {
		got := algo(gbc)
		if !got.ToPairs().Equal(want) {
			t.Errorf("%s: TC = %v, want %v", name, got.ToPairs().Sorted(), want.Sorted())
		}
		if got.NumPairs() != 10 {
			t.Errorf("%s: NumPairs = %d, want 10", name, got.NumPairs())
		}
	}
}

func algorithms() map[string]func(*graph.DiGraph) *Closure {
	return map[string]func(*graph.DiGraph) *Closure{
		"BFS":     BFS,
		"Purdom":  Purdom,
		"Nuutila": Nuutila,
		"Bitset":  Bitset,
		// BitsetTopo falls back to Bitset off the reverse-topological
		// precondition, so it is total; condensation-shaped inputs that
		// exercise its fast paths are covered in bitset_test.go.
		"BitsetTopo": BitsetTopo,
		// The two halves of Bitset, forced regardless of what the density
		// heuristic would pick, so both stay correct on every shape.
		"BitsetDense": func(d *graph.DiGraph) *Closure {
			comps := scc.Tarjan(d)
			if comps.NumComponents() == 0 {
				return Bitset(d)
			}
			c, _ := bitsetDense(d.NumVertices(), comps, scc.Condense(d, comps), nil)
			return c
		},
		"BitsetSparse": func(d *graph.DiGraph) *Closure {
			comps := scc.Tarjan(d)
			if comps.NumComponents() == 0 {
				return Bitset(d)
			}
			c, _ := bitsetSparse(d.NumVertices(), comps, scc.Condense(d, comps), nil)
			return c
		},
	}
}

func TestSelfLoopSemantics(t *testing.T) {
	// (u,u) ∈ TC only via a cycle: path length ≥ 1.
	d := digraph(3, [][2]graph.VID{{0, 1}})
	for name, algo := range algorithms() {
		c := algo(d)
		if c.Reachable(0, 0) {
			t.Errorf("%s: (0,0) reachable without a cycle", name)
		}
		if !c.Reachable(0, 1) {
			t.Errorf("%s: (0,1) missing", name)
		}
		if c.Reachable(1, 0) {
			t.Errorf("%s: (1,0) present, edges are directed", name)
		}
	}
	loop := digraph(2, [][2]graph.VID{{0, 0}})
	for name, algo := range algorithms() {
		if !algo(loop).Reachable(0, 0) {
			t.Errorf("%s: self-loop lost", name)
		}
	}
}

func TestChain(t *testing.T) {
	d := digraph(4, [][2]graph.VID{{0, 1}, {1, 2}, {2, 3}})
	for name, algo := range algorithms() {
		c := algo(d)
		if c.NumPairs() != 6 { // 0→{1,2,3}, 1→{2,3}, 2→{3}
			t.Errorf("%s: NumPairs = %d, want 6", name, c.NumPairs())
		}
		if got := c.From(0); len(got) != 3 || got[0] != 1 || got[2] != 3 {
			t.Errorf("%s: From(0) = %v", name, got)
		}
		if got := c.From(3); len(got) != 0 {
			t.Errorf("%s: From(3) = %v, want empty", name, got)
		}
	}
}

func TestCycleIsComplete(t *testing.T) {
	d := digraph(3, [][2]graph.VID{{0, 1}, {1, 2}, {2, 0}})
	for name, algo := range algorithms() {
		c := algo(d)
		if c.NumPairs() != 9 {
			t.Errorf("%s: NumPairs = %d, want 9 (complete relation on a cycle)", name, c.NumPairs())
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	d := digraph(5, nil)
	for name, algo := range algorithms() {
		c := algo(d)
		if c.NumPairs() != 0 {
			t.Errorf("%s: NumPairs = %d, want 0", name, c.NumPairs())
		}
	}
}

func TestEachOrderAndEarlyStop(t *testing.T) {
	d := digraph(3, [][2]graph.VID{{1, 2}, {0, 1}})
	c := BFS(d)
	var got []pairs.Pair
	c.Each(func(u, w graph.VID) bool {
		got = append(got, pairs.Pair{Src: u, Dst: w})
		return true
	})
	want := []pairs.Pair{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}}
	if len(got) != len(want) {
		t.Fatalf("Each = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each = %v, want %v", got, want)
		}
	}
	n := 0
	c.Each(func(u, w graph.VID) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestClosureEqual(t *testing.T) {
	d := digraph(3, [][2]graph.VID{{0, 1}, {1, 2}})
	a, b := BFS(d), Purdom(d)
	if !a.Equal(b) {
		t.Error("Equal false negative")
	}
	c := BFS(digraph(3, [][2]graph.VID{{0, 1}}))
	if a.Equal(c) {
		t.Error("Equal false positive")
	}
}

// floydWarshall is the oracle for property tests.
func floydWarshall(d *graph.DiGraph) *pairs.Set {
	n := d.NumVertices()
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	d.Edges(func(src, dst graph.VID) bool {
		reach[src][dst] = true
		return true
	})
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	out := pairs.NewSet()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if reach[i][j] {
				out.Add(graph.VID(i), graph.VID(j))
			}
		}
	}
	return out
}

// Property: all three algorithms agree with Floyd-Warshall.
func TestAlgorithmsAgainstFloydWarshall(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(14)
		b := graph.NewDiBuilder(n)
		for i := rng.Intn(40); i > 0; i-- {
			b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)))
		}
		d := b.Build()
		want := floydWarshall(d)
		for name, algo := range algorithms() {
			if !algo(d).ToPairs().Equal(want) {
				t.Logf("%s disagrees with Floyd-Warshall (n=%d)", name, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: From slices are sorted and duplicate-free, and NumPairs is
// consistent with them.
func TestClosureInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		b := graph.NewDiBuilder(n)
		for i := rng.Intn(60); i > 0; i-- {
			b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)))
		}
		d := b.Build()
		for _, algo := range algorithms() {
			c := algo(d)
			total := 0
			for v := 0; v < n; v++ {
				s := c.From(graph.VID(v))
				total += len(s)
				for i := 1; i < len(s); i++ {
					if s[i] <= s[i-1] {
						return false
					}
				}
			}
			if total != c.NumPairs() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
