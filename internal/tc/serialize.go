package tc

import (
	"fmt"

	"rtcshare/internal/graph"
)

// CSR flattens the closure into raw CSR columns: the successors of u
// are targets[offsets[u]:offsets[u+1]], sorted ascending. Rows that
// alias each other in memory (expand gives every member of an SCC the
// same successor slice) are written out expanded; the aliasing is a
// memory optimisation, not part of the closure's value. The returned
// slices are freshly allocated.
func (c *Closure) CSR() (offsets []int32, targets []graph.VID) {
	offsets = make([]int32, c.numVertices+1)
	targets = make([]graph.VID, 0, c.numPairs)
	for u := 0; u < c.numVertices; u++ {
		targets = append(targets, c.succ[u]...)
		offsets[u+1] = int32(len(targets))
	}
	return offsets, targets
}

// ClosureFromCSR rebuilds a Closure from raw CSR columns, validating
// them first (offsets monotone and spanning targets, runs strictly
// increasing, targets in range) so columns arriving from disk can never
// index out of range or break the binary searches. Each successor row
// aliases the single targets slab — the whole closure loads as two flat
// slices plus one row-slicing pass, no per-row allocation.
func ClosureFromCSR(numVertices int, offsets []int32, targets []graph.VID) (*Closure, error) {
	if err := graph.ValidateCSR(numVertices, numVertices, offsets, targets, true); err != nil {
		return nil, fmt.Errorf("tc: closure CSR: %w", err)
	}
	c := &Closure{
		numVertices: numVertices,
		succ:        make([][]graph.VID, numVertices),
		numPairs:    len(targets),
	}
	for u := 0; u < numVertices; u++ {
		if row := targets[offsets[u]:offsets[u+1]]; len(row) > 0 {
			c.succ[u] = row
		}
	}
	return c, nil
}
