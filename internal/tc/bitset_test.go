package tc

import (
	"math/rand"
	"testing"

	"rtcshare/internal/graph"
	"rtcshare/internal/scc"
)

// The density heuristic must route chain-like (sparse) condensations to
// the BFS path and cyclic/dense ones to the slab DP; both must agree
// with the oracle either way. This pins the selection boundary so a
// future tweak to denseBreakEven is a conscious decision.
func TestBitsetPathSelection(t *testing.T) {
	// A pure chain of n singleton components: condensation has n vertices
	// and n-1 edges, mean degree < 1 → sparse path.
	chain := graph.NewDiBuilder(64)
	for i := 0; i < 63; i++ {
		chain.AddEdge(graph.VID(i), graph.VID(i+1))
	}
	d := chain.Build()
	comps := scc.Tarjan(d)
	cond := scc.Condense(d, comps)
	if got := float64(cond.NumEdges()) >= denseBreakEven*float64(comps.NumComponents()); got {
		t.Errorf("chain condensation classified dense (|Ē|=%d, k=%d)", cond.NumEdges(), comps.NumComponents())
	}

	// A dense random digraph percolates: mean condensation degree ≥ 1.
	rng := rand.New(rand.NewSource(5))
	b := graph.NewDiBuilder(40)
	for i := 0; i < 400; i++ {
		b.AddEdge(graph.VID(rng.Intn(40)), graph.VID(rng.Intn(40)))
	}
	d2 := b.Build()
	comps2 := scc.Tarjan(d2)
	cond2 := scc.Condense(d2, comps2)
	if got := float64(cond2.NumEdges()) >= denseBreakEven*float64(comps2.NumComponents()); !got {
		t.Errorf("dense condensation classified sparse (|Ē|=%d, k=%d)", cond2.NumEdges(), comps2.NumComponents())
	}

	// Whichever half runs, the result matches the oracle on both shapes.
	for _, g := range []*graph.DiGraph{d, d2} {
		if !Bitset(g).ToPairs().Equal(floydWarshall(g)) {
			t.Error("Bitset disagrees with Floyd-Warshall")
		}
	}
}

// The sparse path's worker fan-out must be deterministic: lists land in
// per-source slots, so any worker count yields the same closure.
func TestBitsetSparseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := graph.NewDiBuilder(200)
	for i := 0; i < 220; i++ {
		b.AddEdge(graph.VID(rng.Intn(200)), graph.VID(rng.Intn(200)))
	}
	d := b.Build()
	comps := scc.Tarjan(d)
	cond := scc.Condense(d, comps)
	want, _ := bitsetSparse(d.NumVertices(), comps, cond, nil)
	for i := 0; i < 3; i++ {
		got, _ := bitsetSparse(d.NumVertices(), comps, cond, nil)
		if !got.Equal(want) {
			t.Fatal("sparse closure not deterministic across runs")
		}
	}
	if !want.ToPairs().Equal(floydWarshall(d)) {
		t.Fatal("sparse closure disagrees with Floyd-Warshall")
	}
}

// Bitset on a graph wider than one word exercises multi-word rows.
func TestBitsetMultiWordRows(t *testing.T) {
	// 150 singleton components all reachable from component 0's SCC via a
	// binary-tree fan-out, plus a 3-cycle to keep a non-trivial SCC.
	b := graph.NewDiBuilder(160)
	for i := 0; i < 74; i++ {
		b.AddEdge(graph.VID(i), graph.VID(2*i+1))
		b.AddEdge(graph.VID(i), graph.VID(2*i+2))
	}
	b.AddEdge(150, 151)
	b.AddEdge(151, 152)
	b.AddEdge(152, 150)
	b.AddEdge(152, 0)
	d := b.Build()
	if !Bitset(d).ToPairs().Equal(floydWarshall(d)) {
		t.Fatal("multi-word Bitset disagrees with Floyd-Warshall")
	}
}

// BitsetTopo's fast paths run on condensation-shaped inputs (every edge
// s→t with t ≤ s). Property: on the condensation of a random digraph,
// both forced halves and the auto-selected entry agree with BFS over
// the same condensation, and the precondition check really routes
// around the fallback.
func TestBitsetTopoOnCondensations(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(900 + seed))
		n := 2 + rng.Intn(60)
		b := graph.NewDiBuilder(n)
		for i := rng.Intn(4 * n); i > 0; i-- {
			b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)))
		}
		d := b.Build()
		comps := scc.Tarjan(d)
		cond := scc.Condense(d, comps)

		want := BFS(cond)
		dense, _ := bitsetTopoDense(cond, nil)
		sparse, _ := bitsetTopoSparse(cond, nil)
		for name, got := range map[string]*Closure{
			"auto":   BitsetTopo(cond),
			"dense":  dense,
			"sparse": sparse,
		} {
			if !got.Equal(want) {
				t.Fatalf("seed %d: BitsetTopo(%s) disagrees with BFS on the condensation", seed, name)
			}
		}
	}

	// A graph violating the ordering (an edge to a higher vertex) must
	// take the fallback and still be correct.
	viol := digraph(4, [][2]graph.VID{{0, 2}, {2, 1}, {1, 3}})
	if !BitsetTopo(viol).ToPairs().Equal(floydWarshall(viol)) {
		t.Fatal("BitsetTopo fallback disagrees with Floyd-Warshall")
	}
}
