// Package tc computes transitive closures of unlabeled digraphs.
//
// Four algorithms are provided:
//
//   - BFS: a per-vertex breadth-first search, O(|V|·|E|). This is the
//     closure computation the paper assigns to both methods in Table III
//     (FullSharing runs it on G_R, RTCSharing on the much smaller Ḡ_R).
//   - Purdom: Purdom's SCC-based algorithm [12] — components, topological
//     order, then successor-set union over the condensation.
//   - Nuutila: Nuutila's improvement [13] — successor sets are built
//     during Tarjan's traversal, exploiting the reverse topological
//     emission order, with no separate condensation pass.
//   - Bitset: a hybrid chosen by condensation density (bitset.go) — a
//     word-parallel flat-slab bitset DP in reverse topological order for
//     dense condensations, a worker-parallel per-source frontier BFS for
//     sparse ones.
//
// All four produce identical Closures; properties in tc_test.go enforce
// it. The closure follows the paper's semantics: (u, w) ∈ TC iff a path
// of length ≥ 1 leads from u to w, so (u, u) requires a cycle through u.
package tc

import (
	"math/bits"
	"slices"
	"sort"
	"sync"

	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/scc"
)

// Closure is the transitive closure of a digraph: for each vertex, the
// sorted set of vertices reachable by a path of length ≥ 1.
type Closure struct {
	numVertices int
	succ        [][]graph.VID
	numPairs    int

	// invOnce/inv hold the lazily computed transposed closure, built on
	// the first Inverted call. Closures are shared immutably across
	// goroutines, so the transpose is guarded by a Once.
	invOnce sync.Once
	inv     *Closure
}

// NumVertices returns the size of the underlying VID space.
func (c *Closure) NumVertices() int { return c.numVertices }

// NumPairs returns the number of (u, w) pairs in the closure — the
// paper's "shared data size" metric for FullSharing (Fig. 12).
func (c *Closure) NumPairs() int { return c.numPairs }

// From returns the vertices reachable from u, sorted ascending. The
// caller must not modify the returned slice.
func (c *Closure) From(u graph.VID) []graph.VID { return c.succ[u] }

// Into returns the vertices that reach w, sorted ascending — From on the
// transposed closure. The transpose is built lazily on first use (one
// O(pairs) pass) and cached; it backs the backward batch-unit join,
// which drives the Pre ⋈ R+ ⋈ Post pipeline from the Post side. The
// caller must not modify the returned slice.
func (c *Closure) Into(w graph.VID) []graph.VID { return c.Inverted().From(w) }

// Inverted returns the transposed closure: (u, w) ∈ c iff (w, u) ∈
// Inverted. It is computed once, concurrently-safely, and shared by all
// callers. The transpose of the transpose is the original closure.
func (c *Closure) Inverted() *Closure {
	c.invOnce.Do(func() {
		inv := &Closure{numVertices: c.numVertices, numPairs: c.numPairs, inv: c}
		inv.invOnce.Do(func() {}) // inv's own inverse is c; never recompute
		counts := make([]int, c.numVertices)
		c.Each(func(_, w graph.VID) bool {
			counts[w]++
			return true
		})
		inv.succ = make([][]graph.VID, c.numVertices)
		for w, n := range counts {
			if n > 0 {
				inv.succ[w] = make([]graph.VID, 0, n)
			}
		}
		// Each walks sources in ascending order, so every transposed list
		// is appended in sorted order.
		c.Each(func(u, w graph.VID) bool {
			inv.succ[w] = append(inv.succ[w], u)
			return true
		})
		c.inv = inv
	})
	return c.inv
}

// Reachable reports whether a path of length ≥ 1 leads from u to w.
func (c *Closure) Reachable(u, w graph.VID) bool {
	s := c.succ[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= w })
	return i < len(s) && s[i] == w
}

// Each calls fn for every closure pair in (src, dst) order, stopping
// early if fn returns false.
func (c *Closure) Each(fn func(u, w graph.VID) bool) {
	for u := range c.succ {
		for _, w := range c.succ[u] {
			if !fn(graph.VID(u), w) {
				return
			}
		}
	}
}

// ToPairs materialises the closure as a pair set.
func (c *Closure) ToPairs() *pairs.Set {
	out := pairs.NewSetCap(c.numPairs)
	c.Each(func(u, w graph.VID) bool {
		out.Add(u, w)
		return true
	})
	return out
}

// Equal reports whether two closures contain the same pairs.
func (c *Closure) Equal(other *Closure) bool {
	if c.numVertices != other.numVertices || c.numPairs != other.numPairs {
		return false
	}
	for u := range c.succ {
		a, b := c.succ[u], other.succ[u]
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// BFS computes the closure by a breadth-first search from every active
// vertex: O(|V|·|E|) time, the complexity the paper quotes in Table III.
func BFS(d *graph.DiGraph) *Closure {
	c, _ := bfs(d, nil)
	return c
}

// bfs is BFS with an optional per-source cancellation checkpoint.
func bfs(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	n := d.NumVertices()
	c := &Closure{numVertices: n, succ: make([][]graph.VID, n)}
	visited := make([]uint32, n)
	gen := uint32(0)
	queue := make([]graph.VID, 0, 64)

	// lastRows is the work of the previous source's search, spent
	// against the checkpoint budget before starting the next one.
	lastRows := 1
	for _, u := range d.ActiveVertices() {
		if d.OutDegree(u) == 0 {
			continue
		}
		if err := checkRows(check, lastRows); err != nil {
			return nil, err
		}
		gen++
		queue = queue[:0]
		// Seed with u's successors; u itself is reachable only via a
		// cycle, so it is not pre-marked.
		var reach []graph.VID
		for _, w := range d.Successors(u) {
			if visited[w] != gen {
				visited[w] = gen
				queue = append(queue, w)
				reach = append(reach, w)
			}
		}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range d.Successors(v) {
				if visited[w] != gen {
					visited[w] = gen
					queue = append(queue, w)
					reach = append(reach, w)
				}
			}
		}
		sort.Slice(reach, func(i, j int) bool { return reach[i] < reach[j] })
		c.succ[u] = reach
		c.numPairs += len(reach)
		lastRows = len(reach) + 1
	}
	return c, nil
}

// bitset is a fixed-width bitmap over component IDs.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int32)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) get(i int32) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) or(other bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Purdom computes the closure with Purdom's algorithm [12]: find SCCs,
// condense, walk components in topological order unioning successor
// sets, then expand component reachability back to vertex pairs
// (the expansion is Lemma 3's Cartesian product).
func Purdom(d *graph.DiGraph) *Closure {
	c, _ := purdom(d, nil)
	return c
}

// purdom is Purdom with an optional per-component checkpoint.
func purdom(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	comps := scc.Tarjan(d)
	cond := scc.Condense(d, comps)
	k := comps.NumComponents()

	// Tarjan emits components in reverse topological order, so SIDs
	// 0..k-1 are already a valid processing order (all successors of a
	// component have smaller SIDs).
	reach := make([]bitset, k)
	words := (k + 63) / 64
	for s := int32(0); s < int32(k); s++ {
		if err := checkRows(check, words); err != nil {
			return nil, err
		}
		r := newBitset(k)
		for _, t := range cond.Successors(s) {
			r.set(t)
			if t != s {
				r.or(reach[t])
			}
		}
		reach[s] = r
	}
	return expand(d.NumVertices(), comps, reach, check)
}

// Nuutila computes the closure with Nuutila's interleaved algorithm [13]:
// Tarjan's DFS and successor-set construction run in one pass, relying on
// the fact that when a component is emitted every component it can reach
// has already been emitted.
func Nuutila(d *graph.DiGraph) *Closure {
	c, _ := nuutila(d, nil)
	return c
}

// nuutila is Nuutila with an optional per-component checkpoint.
func nuutila(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	comps := scc.Tarjan(d)
	k := comps.NumComponents()
	reach := make([]bitset, k)

	// Single pass in emission order (reverse topological): for each
	// component, fold in the reach sets of the components its member
	// edges point to. This is the interleaving Nuutila describes, with
	// the DFS already folded into Tarjan.
	words := (k + 63) / 64
	for s := int32(0); s < int32(k); s++ {
		if err := checkRows(check, words); err != nil {
			return nil, err
		}
		r := newBitset(k)
		for _, u := range comps.Members[s] {
			for _, w := range d.Successors(u) {
				t := comps.CompOf[w]
				r.set(t)
				if t != s {
					r.or(reach[t])
				}
			}
		}
		reach[s] = r
	}
	return expand(d.NumVertices(), comps, reach, check)
}

// expand converts component-level reachability to the vertex-level
// closure: u reaches every member of every component in reach[comp(u)]
// (Lemma 3 / Theorem 1). check, when non-nil, is consulted once per
// expanded successor list.
func expand(numVertices int, comps *scc.Components, reach []bitset, check Checkpoint) (*Closure, error) {
	c := &Closure{numVertices: numVertices, succ: make([][]graph.VID, numVertices)}
	k := comps.NumComponents()

	// Precompute the expanded successor list per component once; all its
	// members share it (Lemma 2). Each list is sized exactly before
	// filling — expansion runs once per shared structure, so its
	// allocations are warm-path.
	expanded := make([][]graph.VID, k)
	for s := int32(0); s < int32(k); s++ {
		if reach[s].count() == 0 {
			continue
		}
		size := 0
		for t := int32(0); t < int32(k); t++ {
			if reach[s].get(t) {
				size += len(comps.Members[t])
			}
		}
		if err := checkRows(check, size+1); err != nil {
			return nil, err
		}
		out := make([]graph.VID, 0, size)
		for t := int32(0); t < int32(k); t++ {
			if reach[s].get(t) {
				out = append(out, comps.Members[t]...)
			}
		}
		slices.Sort(out)
		expanded[s] = out
	}
	for _, vs := range comps.Members {
		for _, u := range vs {
			s := comps.CompOf[u]
			c.succ[u] = expanded[s]
			c.numPairs += len(expanded[s])
		}
	}
	return c, nil
}
