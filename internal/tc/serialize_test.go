package tc

import (
	"testing"

	"rtcshare/internal/graph"
)

func TestClosureCSRRoundTrip(t *testing.T) {
	b := graph.NewDiBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 1)
	c := BFS(b.Build())

	offsets, targets := c.CSR()
	got, err := ClosureFromCSR(c.NumVertices(), offsets, targets)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != c.NumVertices() || got.NumPairs() != c.NumPairs() {
		t.Fatalf("round trip: %d/%d vertices, %d/%d pairs",
			got.NumVertices(), c.NumVertices(), got.NumPairs(), c.NumPairs())
	}
	for u := graph.VID(0); u < 5; u++ {
		for w := graph.VID(0); w < 5; w++ {
			if got.Reachable(u, w) != c.Reachable(u, w) {
				t.Errorf("Reachable(%d,%d) differs after reassembly", u, w)
			}
		}
	}

	// Malformed columns never assemble.
	if _, err := ClosureFromCSR(5, offsets[:2], targets); err == nil {
		t.Error("truncated offsets accepted")
	}
	if _, err := ClosureFromCSR(2, []int32{0, 1, 1}, []graph.VID{5}); err == nil {
		t.Error("out-of-range target accepted")
	}
}
