package tc

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"rtcshare/internal/graph"
)

// Property: Into(w) lists exactly the sources whose From contains w,
// sorted; Inverted is an involution sharing the original; NumPairs is
// preserved.
func TestInvertedClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		b := graph.NewDiBuilder(n)
		for i := rng.Intn(60); i > 0; i-- {
			b.AddEdge(graph.VID(rng.Intn(n)), graph.VID(rng.Intn(n)))
		}
		c := BFS(b.Build())
		inv := c.Inverted()
		if inv.NumPairs() != c.NumPairs() || inv.NumVertices() != c.NumVertices() {
			return false
		}
		if inv.Inverted() != c {
			return false // involution must return the original, not a copy
		}
		for w := 0; w < n; w++ {
			into := c.Into(graph.VID(w))
			for i := 1; i < len(into); i++ {
				if into[i] <= into[i-1] {
					return false
				}
			}
			for u := 0; u < n; u++ {
				fwd := c.Reachable(graph.VID(u), graph.VID(w))
				rev := inv.Reachable(graph.VID(w), graph.VID(u))
				if fwd != rev {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The transpose must be computed once even under concurrent first use.
func TestInvertedClosureConcurrent(t *testing.T) {
	b := graph.NewDiBuilder(50)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		b.AddEdge(graph.VID(rng.Intn(50)), graph.VID(rng.Intn(50)))
	}
	c := BFS(b.Build())

	results := make([]*Closure, 16)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Inverted()
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent Inverted calls returned distinct closures")
		}
	}
}
