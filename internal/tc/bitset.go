package tc

// This file implements word-parallel and worker-parallel closure
// construction: the fourth algorithm next to BFS, Purdom and Nuutila.
// Like Purdom it works on the condensation, but the successor sets live
// in one contiguous []uint64 slab — a row per component, unioned 64
// components per instruction in reverse topological order — and for
// condensations too sparse to pay for dense rows it switches to a
// per-source frontier BFS fanned over worker goroutines. The two paths
// produce identical Closures; the selection is purely a constant-factor
// decision.

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"rtcshare/internal/graph"
	"rtcshare/internal/scc"
)

// denseBreakEven decides between the dense and sparse paths. The dense
// DP touches (k/64) words per condensation edge; the sparse BFS touches
// one queue slot per reached component per source. With r = the mean
// fraction of components a component reaches, dense work is
// |Ē|·k/64 word-ops and sparse work is ~k·(r·k) slot-ops, so dense wins
// once reach sets are denser than one component in 64 — true for the
// shallow, cyclic condensations closure sub-queries produce, false for
// long chain-like DAGs. r is unknown before the closure exists, so the
// heuristic uses the condensation's mean degree |Ē|/k as its proxy:
// degree ≥ 1 graphs percolate (reach sets a constant fraction of k),
// anything sparser stays with per-source BFS.
const denseBreakEven = 1.0

// Bitset computes the closure over the condensation with a density-
// selected strategy: a word-parallel bitset DP for dense condensations,
// a worker-parallel per-source frontier BFS for sparse ones. It is the
// default closure for the columnar engine layout; tc_test.go holds it to
// the same outputs as BFS, Purdom and Nuutila.
func Bitset(d *graph.DiGraph) *Closure {
	c, _ := bitsetChecked(d, nil)
	return c
}

// bitsetChecked is Bitset with an optional cancellation checkpoint.
func bitsetChecked(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	comps := scc.Tarjan(d)
	k := comps.NumComponents()
	if k == 0 {
		return &Closure{numVertices: d.NumVertices(), succ: make([][]graph.VID, d.NumVertices())}, nil
	}
	cond := scc.Condense(d, comps)
	if float64(cond.NumEdges()) >= denseBreakEven*float64(k) {
		return bitsetDense(d.NumVertices(), comps, cond, check)
	}
	return bitsetSparse(d.NumVertices(), comps, cond, check)
}

// BitsetTopo computes the closure of a digraph whose vertex numbering
// is already reverse topological modulo self-loops — every edge s→t has
// t ≤ s — which is exactly the shape scc.Condense produces from
// Tarjan's components (SIDs are emitted in reverse topological order).
// Components of such a graph are singletons, so rtc.Compute hands its
// freshly built condensation Ḡ_R here directly and skips the second
// Tarjan+Condense pass Bitset would spend re-deriving what the caller
// already knows. The ordering precondition is verified in one O(|E|)
// scan; inputs that violate it fall back to Bitset, so the function is
// correct on any digraph.
func BitsetTopo(d *graph.DiGraph) *Closure {
	c, _ := bitsetTopo(d, nil)
	return c
}

// bitsetTopo is BitsetTopo with an optional cancellation checkpoint.
func bitsetTopo(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	ordered := true
	d.Edges(func(s, t graph.VID) bool {
		if t > s {
			ordered = false
			return false
		}
		return true
	})
	if !ordered {
		return bitsetChecked(d, check)
	}
	k := d.NumVertices()
	if k == 0 {
		return &Closure{numVertices: 0, succ: nil}, nil
	}
	if float64(d.NumEdges()) >= denseBreakEven*float64(k) {
		return bitsetTopoDense(d, check)
	}
	return bitsetTopoSparse(d, check)
}

// bitsetTopoDense is bitsetDense with singleton components: rows are
// indexed by vertex, and each finished row is decoded straight into the
// sorted successor slice (ascending bit order is ascending VID order).
// The checkpoint is consulted once per row in both passes.
func bitsetTopoDense(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	k := d.NumVertices()
	words := (k + 63) / 64
	slab := make([]uint64, k*words)
	for s := 0; s < k; s++ {
		if err := checkRows(check, words); err != nil {
			return nil, err
		}
		row := bitset(slab[s*words : (s+1)*words])
		for _, t := range d.Successors(graph.VID(s)) {
			row.set(t)
			if int(t) != s {
				row.or(slab[int(t)*words : (int(t)+1)*words])
			}
		}
	}
	c := &Closure{numVertices: k, succ: make([][]graph.VID, k)}
	for s := 0; s < k; s++ {
		if err := checkRows(check, words); err != nil {
			return nil, err
		}
		row := bitset(slab[s*words : (s+1)*words])
		n := row.count()
		if n == 0 {
			continue
		}
		out := make([]graph.VID, 0, n)
		for w, word := range row {
			for word != 0 {
				out = append(out, graph.VID(w*64+bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		c.succ[s] = out
		c.numPairs += n
	}
	return c, nil
}

// bitsetTopoSparse is bitsetSparse with singleton components: the
// per-source reach lists are the successor slices themselves, sorted.
// The worker-parallel reachLists phase is uncheckpointed (the
// Checkpoint contract is single-goroutine); the checkpoint brackets it
// and then runs per list during the sort pass.
func bitsetTopoSparse(d *graph.DiGraph, check Checkpoint) (*Closure, error) {
	k := d.NumVertices()
	if err := checkRows(check, 1); err != nil {
		return nil, err
	}
	lists := reachLists(d)
	c := &Closure{numVertices: k, succ: make([][]graph.VID, k)}
	for s, reach := range lists {
		if len(reach) == 0 {
			continue
		}
		if err := checkRows(check, len(reach)); err != nil {
			return nil, err
		}
		slices.Sort(reach)
		c.succ[s] = reach
		c.numPairs += len(reach)
	}
	return c, nil
}

// bitsetDense is the word-parallel path: one bitset row per component in
// a single flat slab, rows unioned with 64-bit ors in reverse
// topological order. Tarjan emits components in reverse topological
// order, so SIDs 0..k-1 are a valid processing order — every successor
// of a component has a smaller SID and therefore a finished row.
func bitsetDense(numVertices int, comps *scc.Components, cond *graph.DiGraph, check Checkpoint) (*Closure, error) {
	k := comps.NumComponents()
	words := (k + 63) / 64
	slab := make([]uint64, k*words)
	reach := make([]bitset, k)
	for s := int32(0); s < int32(k); s++ {
		if err := checkRows(check, words); err != nil {
			return nil, err
		}
		row := bitset(slab[int(s)*words : (int(s)+1)*words])
		for _, t := range cond.Successors(s) {
			row.set(t)
			if t != s {
				row.or(reach[t])
			}
		}
		reach[s] = row
	}
	return expand(numVertices, comps, reach, check)
}

// bitsetSparse is the worker-parallel path: an independent frontier BFS
// over the condensation per source component, then SCC-wise expansion.
// The parallel BFS phase is uncheckpointed; the expansion checks per
// successor list.
func bitsetSparse(numVertices int, comps *scc.Components, cond *graph.DiGraph, check Checkpoint) (*Closure, error) {
	if err := checkRows(check, 1); err != nil {
		return nil, err
	}
	return expandLists(numVertices, comps, reachLists(cond), check)
}

// reachLists runs one frontier BFS per source vertex of d, vertices
// strided across GOMAXPROCS workers, each worker reusing one
// generation-stamped visited array and one queue. lists[s] holds the
// vertices reachable from s by a path of length ≥ 1, in visit order;
// per-source slots are disjoint, so the only coordination is the
// WaitGroup and the result is deterministic for any worker count.
func reachLists(d *graph.DiGraph) [][]graph.VID {
	k := d.NumVertices()
	lists := make([][]graph.VID, k)

	workers := runtime.GOMAXPROCS(0)
	if workers > k {
		workers = k
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			visited := make([]uint32, k)
			gen := uint32(0)
			queue := make([]graph.VID, 0, 64)
			for s := int32(w); s < int32(k); s += int32(workers) {
				if d.OutDegree(s) == 0 {
					continue
				}
				gen++
				queue = queue[:0]
				var reach []graph.VID
				// Seed with s's successors; s itself is reachable only
				// through a cycle (here: a self-loop edge).
				for _, t := range d.Successors(s) {
					if visited[t] != gen {
						visited[t] = gen
						queue = append(queue, t)
						reach = append(reach, t)
					}
				}
				for len(queue) > 0 {
					u := queue[len(queue)-1]
					queue = queue[:len(queue)-1]
					for _, t := range d.Successors(u) {
						if visited[t] != gen {
							visited[t] = gen
							queue = append(queue, t)
							reach = append(reach, t)
						}
					}
				}
				lists[s] = reach
			}
		}(w)
	}
	wg.Wait()
	return lists
}

// expandLists is expand for per-component reach lists instead of
// bitsets: u reaches every member of every component in
// lists[comp(u)] (Lemma 3 / Theorem 1). check, when non-nil, is
// consulted once per expanded successor list.
func expandLists(numVertices int, comps *scc.Components, lists [][]graph.VID, check Checkpoint) (*Closure, error) {
	c := &Closure{numVertices: numVertices, succ: make([][]graph.VID, numVertices)}
	k := comps.NumComponents()

	expanded := make([][]graph.VID, k)
	for s := int32(0); s < int32(k); s++ {
		if len(lists[s]) == 0 {
			continue
		}
		size := 0
		for _, t := range lists[s] {
			size += len(comps.Members[t])
		}
		if err := checkRows(check, size+1); err != nil {
			return nil, err
		}
		out := make([]graph.VID, 0, size)
		for _, t := range lists[s] {
			out = append(out, comps.Members[t]...)
		}
		slices.Sort(out)
		expanded[s] = out
	}
	for _, vs := range comps.Members {
		for _, u := range vs {
			s := comps.CompOf[u]
			c.succ[u] = expanded[s]
			c.numPairs += len(expanded[s])
		}
	}
	return c, nil
}
