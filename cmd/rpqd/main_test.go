package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"rtcshare/internal/cli"
)

// syncBuffer is an io.Writer safe to read while run() writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                  // no graph
		{"-graph", "/does/not/exist"},       // unreadable graph
		{"-demo", "-strategy", "bogus"},     // bad strategy
		{"-demo", "-planner", "bogus"},      // bad planner
		{"-demo", "-addr", "not-an-addr:x"}, // unbindable address
		{"-demo", "-addr", "127.0.0.1:0", "-pprof", "not-an-addr:x"}, // unbindable pprof address
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// TestRunServesAndShutsDown boots rpqd on an ephemeral port against a
// real graph file, queries it over HTTP, then cancels the context and
// expects a clean exit.
func TestRunServesAndShutsDown(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	graphText := "%vertices 4\n0 a 1\n1 a 2\n2 a 0\n2 b 3\n"
	if err := os.WriteFile(path, []byte(graphText), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-graph", path, "-addr", "127.0.0.1:0", "-window", "1ms"}, out)
	}()

	// Wait for the listen line and extract the bound address.
	addrRe := regexp.MustCompile(`serving on http://([^ ]+) `)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("rpqd exited early: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("rpqd never reported its address: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"query":"a+.b"}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Total int        `json:"total"`
		Pairs [][2]int32 `json:"pairs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// a+.b from the 3-cycle: every cycle vertex reaches 3.
	if resp.StatusCode != http.StatusOK || qr.Total != 3 {
		t.Fatalf("query: status %d, total %d (want 3): %+v", resp.StatusCode, qr.Total, qr)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("rpqd did not shut down")
	}
}

func TestRunDemoGraph(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-demo", "-addr", "127.0.0.1:0"}, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "serving on") {
		select {
		case err := <-done:
			t.Fatalf("rpqd exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("demo server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "|V|=10") {
		t.Fatalf("demo graph is not Fig. 1: %q", out.String())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRunAdaptiveBootLine: with the default -window 0 the boot line
// advertises the adaptive range instead of a fixed duration.
func TestRunAdaptiveBootLine(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-demo", "-addr", "127.0.0.1:0", "-min-window", "200µs", "-max-window", "3ms"}, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "serving on") {
		select {
		case err := <-done:
			t.Fatalf("rpqd exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "window adaptive [200µs, 3ms]") {
		t.Fatalf("boot line does not advertise the adaptive window: %q", out.String())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRunPprof: -pprof serves the profile index on its own loopback
// listener, and a bare ":port" never binds beyond 127.0.0.1.
func TestRunPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-demo", "-addr", "127.0.0.1:0", "-pprof", ":0"}, out)
	}()
	pprofRe := regexp.MustCompile(`pprof on http://([^/]+)/`)
	var pprofBase string
	deadline := time.Now().Add(10 * time.Second)
	for pprofBase == "" || !strings.Contains(out.String(), "serving on") {
		if m := pprofRe.FindStringSubmatch(out.String()); m != nil && strings.Contains(out.String(), "serving on") {
			pprofBase = "http://" + m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("rpqd exited early: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("pprof listener never reported: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(pprofBase, "127.0.0.1") {
		t.Fatalf("bare :port bound %q, want loopback", pprofBase)
	}
	resp, err := http.Get(pprofBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d, body %q", resp.StatusCode, string(body)[:min(len(body), 200)])
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestHelpExitsZero(t *testing.T) {
	err := run(context.Background(), []string{"-h"}, io.Discard)
	if cli.ExitCode(err) != 0 {
		t.Fatalf("-h must map to exit 0, got err %v", err)
	}
	err = run(context.Background(), []string{"-no-such-flag"}, io.Discard)
	if cli.ExitCode(err) != 1 {
		t.Fatalf("bad flag must map to exit 1, got err %v", err)
	}
}

// startRPQD boots run() on an ephemeral port and returns the base URL,
// the exit channel and a cancel that triggers graceful shutdown.
func startRPQD(t *testing.T, args ...string) (string, chan error, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()
	addrRe := regexp.MustCompile(`serving on http://([^ ]+) `)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], done, cancel
		}
		select {
		case err := <-done:
			t.Fatalf("rpqd exited early: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("rpqd never reported its address: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func shutdownRPQD(t *testing.T, done chan error, cancel context.CancelFunc) {
	t.Helper()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("rpqd did not shut down")
	}
}

// TestRunMethodNotAllowed pins the front-door contract: a wrong method
// on a real endpoint is 405 with an Allow header — GET /update must
// never read as a mutation or a missing route.
func TestRunMethodNotAllowed(t *testing.T) {
	base, done, cancel := startRPQD(t, "-demo")
	defer shutdownRPQD(t, done, cancel)

	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/update", "POST"},
		{http.MethodDelete, "/query", "GET, POST"},
		{http.MethodPost, "/explain", "GET"},
		{http.MethodGet, "/admin/snapshot", "POST"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, base+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow %q, want %q", c.method, c.path, got, c.allow)
		}
	}

	// Without -data, the snapshot endpoint exists but refuses.
	resp, err := http.Post(base+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("POST /admin/snapshot without -data: status %d, want 409", resp.StatusCode)
	}
}

// TestRunPersistenceLifecycle drives the full durability story over
// HTTP: boot with -data, mutate, snapshot via the admin endpoint,
// crashless restart, and verify the second boot restores the mutated
// state (answer included) instead of the seed.
func TestRunPersistenceLifecycle(t *testing.T) {
	data := filepath.Join(t.TempDir(), "store")

	base, done, cancel := startRPQD(t, "-demo", "-data", data)
	// Figure 1 has no edge 0-b->2; insert it and the b.c result grows.
	resp, err := http.Post(base+"/update", "application/json",
		strings.NewReader(`{"updates":[{"op":"insert","src":0,"label":"b","dst":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ur struct {
		Epoch    uint64 `json:"epoch"`
		Inserted int    `json:"inserted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ur.Inserted != 1 || ur.Epoch != 1 {
		t.Fatalf("update response: %+v", ur)
	}

	query := func(base string) int {
		resp, err := http.Post(base+"/query", "application/json", strings.NewReader(`{"query":"b.c"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr struct {
			Total int    `json:"total"`
			Epoch uint64 `json:"epoch"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if qr.Epoch != 1 {
			t.Fatalf("query ran at epoch %d, want 1", qr.Epoch)
		}
		return qr.Total
	}
	want := query(base)

	// Admin snapshot captures the warmed, updated state.
	resp, err = http.Post(base+"/admin/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var si struct {
		Epoch uint64 `json:"epoch"`
		Bytes int64  `json:"bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&si); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || si.Epoch != 1 || si.Bytes == 0 {
		t.Fatalf("admin snapshot: status %d, %+v", resp.StatusCode, si)
	}

	// Metrics carry the persistence section when -data is set.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Persistence *struct {
			Store struct {
				SnapshotEpoch uint64 `json:"snapshot_epoch"`
			} `json:"store"`
		} `json:"persistence"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Persistence == nil || m.Persistence.Store.SnapshotEpoch != 1 {
		t.Fatalf("metrics persistence section: %+v", m.Persistence)
	}
	shutdownRPQD(t, done, cancel)

	// Second boot: -data alone, no -demo/-graph. The restore line must
	// appear and the updated answer must survive.
	ctx, cancel2 := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done2 := make(chan error, 1)
	go func() { done2 <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data", data}, out) }()
	addrRe := regexp.MustCompile(`serving on http://([^ ]+) `)
	deadline := time.Now().Add(10 * time.Second)
	var base2 string
	for base2 == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base2 = "http://" + m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("restart never came up: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "restored "+data) {
		t.Fatalf("restart did not report a restore: %q", out.String())
	}
	if got := query(base2); got != want {
		t.Fatalf("restored answer: %d pairs, want %d", got, want)
	}
	shutdownRPQD(t, done2, cancel2)
}
