package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is an io.Writer safe to read while run() writes to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                  // no graph
		{"-graph", "/does/not/exist"},       // unreadable graph
		{"-demo", "-strategy", "bogus"},     // bad strategy
		{"-demo", "-planner", "bogus"},      // bad planner
		{"-demo", "-addr", "not-an-addr:x"}, // unbindable address
	} {
		if err := run(context.Background(), args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v): expected error", args)
		}
	}
}

// TestRunServesAndShutsDown boots rpqd on an ephemeral port against a
// real graph file, queries it over HTTP, then cancels the context and
// expects a clean exit.
func TestRunServesAndShutsDown(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	graphText := "%vertices 4\n0 a 1\n1 a 2\n2 a 0\n2 b 3\n"
	if err := os.WriteFile(path, []byte(graphText), 0o644); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-graph", path, "-addr", "127.0.0.1:0", "-window", "1ms"}, out)
	}()

	// Wait for the listen line and extract the bound address.
	addrRe := regexp.MustCompile(`serving on http://([^ ]+) `)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("rpqd exited early: %v (output %q)", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("rpqd never reported its address: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"query":"a+.b"}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Total int        `json:"total"`
		Pairs [][2]int32 `json:"pairs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// a+.b from the 3-cycle: every cycle vertex reaches 3.
	if resp.StatusCode != http.StatusOK || qr.Total != 3 {
		t.Fatalf("query: status %d, total %d (want 3): %+v", resp.StatusCode, qr.Total, qr)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("rpqd did not shut down")
	}
}

func TestRunDemoGraph(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-demo", "-addr", "127.0.0.1:0"}, out)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "serving on") {
		select {
		case err := <-done:
			t.Fatalf("rpqd exited early: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("demo server never came up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "|V|=10") {
		t.Fatalf("demo graph is not Fig. 1: %q", out.String())
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
