// Command rpqd serves regular path queries over HTTP, coalescing
// concurrent requests into shared evaluation batches.
//
// Usage:
//
//	rpqd -graph g.txt                       # serve g.txt on :8080
//	rpqd -demo                              # serve the paper's Fig. 1 graph
//	rpqd -graph g.txt -addr :9090 -window 2ms -max-batch 64
//	rpqd -graph g.txt -no-coalesce          # per-request evaluation baseline
//
// Endpoints:
//
//	POST /query    {"query":"d·(b·c)+·c","limit":100,"offset":0}
//	GET  /query?q=…&limit=…&offset=…        # same, for curl convenience
//	POST /update   {"updates":[{"op":"insert","src":1,"label":"a","dst":2}]}
//	GET  /explain?q=…                       # the plan, without executing
//	GET  /healthz                           # liveness + current epoch
//	GET  /metrics                           # cache/coalescing/epoch counters
//
// Concurrent /query requests landing within one coalescing window
// (-window, default 2ms, sealed early at -max-batch distinct queries)
// are deduplicated and evaluated as one engine batch, so they share
// closure structures and describe one graph epoch; /update advances the
// epoch without ever mixing versions inside a batch. SIGINT/SIGTERM
// shut down gracefully: in-flight requests and the pending window
// finish first.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rtcshare"
	"rtcshare/internal/fixtures"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rpqd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rpqd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		graphPath   = fs.String("graph", "", "path to the graph file (text edge-list format)")
		demo        = fs.Bool("demo", false, "serve the paper's Fig. 1 example graph instead of -graph")
		strategy    = fs.String("strategy", "rtc", "evaluation strategy: rtc, full or no")
		planner     = fs.String("planner", "heuristic", "clause planner: heuristic or cost")
		window      = fs.Duration("window", 2*time.Millisecond, "coalescing window")
		maxBatch    = fs.Int("max-batch", 64, "seal a batch at this many distinct queries")
		workers     = fs.Int("workers", 0, "batch evaluation fan-out (0 = GOMAXPROCS)")
		maxInFlight = fs.Int("max-inflight", 1, "batches evaluating concurrently")
		maxQueued   = fs.Int("max-queued", 8, "sealed batches awaiting a slot before 503")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request timeout")
		noCoalesce  = fs.Bool("no-coalesce", false, "evaluate each request immediately (baseline)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g   *rtcshare.Graph
		err error
	)
	switch {
	case *demo:
		g = fixtures.Figure1()
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return ferr
		}
		g, err = rtcshare.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("-graph is required (or -demo)")
	}

	var strat rtcshare.Strategy
	switch *strategy {
	case "rtc":
		strat = rtcshare.RTCSharing
	case "full":
		strat = rtcshare.FullSharing
	case "no":
		strat = rtcshare.NoSharing
	default:
		return fmt.Errorf("unknown strategy %q (want rtc, full or no)", *strategy)
	}
	var mode rtcshare.PlannerMode
	switch *planner {
	case "heuristic":
		mode = rtcshare.PlannerHeuristic
	case "cost":
		mode = rtcshare.PlannerCostBased
	default:
		return fmt.Errorf("unknown planner %q (want heuristic or cost)", *planner)
	}

	engine := rtcshare.NewEngine(g, rtcshare.Options{Strategy: strat, Planner: mode})
	opts := rtcshare.ServerOptions{
		Window:            *window,
		MaxBatch:          *maxBatch,
		Workers:           *workers,
		MaxInFlight:       *maxInFlight,
		MaxQueuedBatches:  *maxQueued,
		RequestTimeout:    *timeout,
		DisableCoalescing: *noCoalesce,
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rpqd: graph %s\n", g.Stats())
	fmt.Fprintf(out, "rpqd: serving on http://%s (window %v, max-batch %d)\n", l.Addr(), *window, *maxBatch)
	return rtcshare.ServeListener(ctx, l, engine, opts)
}
