// Command rpqd serves regular path queries over HTTP, coalescing
// concurrent requests into shared evaluation batches.
//
// Usage:
//
//	rpqd -graph g.txt                       # serve g.txt on :8080
//	rpqd -demo                              # serve the paper's Fig. 1 graph
//	rpqd -graph g.txt -addr :9090 -window 2ms -max-batch 64
//	rpqd -graph g.txt -no-coalesce          # per-request evaluation baseline
//	rpqd -graph g.txt -data ./state         # durable: WAL every update batch
//	rpqd -data ./state                      # restart from the stored snapshot
//	rpqd -graph g.txt -shards 4             # label-partitioned in-process cluster
//	rpqd -demo -pprof :6060                 # also serve net/http/pprof on loopback
//
// Endpoints:
//
//	POST /query    {"query":"d·(b·c)+·c","limit":100,"offset":0}
//	GET  /query?q=…&limit=…&offset=…        # same, for curl convenience
//	GET  /query?q=…&ask=1                   # existence only (short-circuit)
//	GET  /query?q=…&witness=1&src=…&dst=…   # one shortest label-path witness
//	GET  /query/stream?q=…&limit=…          # the result as NDJSON chunks
//	GET  /query/sse?q=…                     # same, framed as Server-Sent Events
//	POST /update   {"updates":[{"op":"insert","src":1,"label":"a","dst":2}]}
//	GET  /explain?q=…                       # the plan, without executing
//	GET  /healthz                           # ok | degraded | draining + epoch
//	GET  /metrics                           # cache/coalescing/epoch/store counters
//	POST /admin/snapshot                    # compact the log into a snapshot
//
// A wrong method on any endpoint answers 405 with an Allow header.
//
// A /query page that does not exhaust the result carries an opaque
// "next_cursor" token; sending it back as "cursor" resumes the page
// sequence. The token pins the graph epoch — resuming after an update
// answers a structured 410 instead of a page inconsistent with the
// earlier ones. /query/stream and /query/sse deliver the result
// incrementally from an epoch-pinned pull stream: -stream-chunk pairs
// per chunk, and -stream-max-lag bounds how many epochs the graph may
// advance past a live stream before it is aborted with an "epoch_lag"
// error record (0 = pinned streams always run to completion).
//
// Failure handling: a client that disconnects (or times out) abandons
// its query, and a batch every waiter abandoned is cancelled instead of
// computed; an evaluator panic is isolated to its own query (a query
// string that keeps crashing is quarantined and rejected with 422); a
// WAL or snapshot write failure drops the daemon to a read-only
// degraded mode — /update answers 503 with Retry-After while /query
// keeps serving the last durable epoch — probed every -probe-interval
// and re-armed automatically when the medium recovers. /healthz
// reports the ladder rung: "ok", "degraded" (with the reason) or
// "draining" during graceful shutdown.
//
// With -data, every effective update batch is fsynced to a write-ahead
// log before the client hears 200, and a snapshot (graph plus the cached
// closure structures) is written on graceful shutdown, on
// POST /admin/snapshot, and every -snapshot-every batches. The next boot
// restores the snapshot — closures included, so the first queries hit a
// warm cache — and replays the log tail; a snapshot in -data wins over
// -graph.
//
// Concurrent /query requests landing within one coalescing window
// (-window, sealed early at -max-batch distinct queries) are
// deduplicated and evaluated as one engine batch, so they share closure
// structures and describe one graph epoch; /update advances the epoch
// without ever mixing versions inside a batch. The default window is
// adaptive: it tracks the arrival rate and batch occupancy between
// -min-window and -max-window; pass -window 2ms for a fixed window.
// Planner-cheap queries additionally bypass the window on a reserved
// fast-lane slot unless -no-fastlane is set. SIGINT/SIGTERM shut down
// gracefully: in-flight requests and the pending window finish first.
//
// -shards N serves a label-partitioned, in-process cluster instead of a
// single engine: N engine shards each own a slice of the closure-cache
// working set, the coordinator scatters structure and sub-relation work
// to the owning shard and joins locally, and /update fans out to every
// shard under a cluster-epoch barrier. Results are pair-for-pair
// identical to a single engine; /metrics grows a per-shard section.
// -shards is incompatible with -data (persistence wraps one engine).
//
// -pprof serves net/http/pprof on a separate listener. Bare ":port"
// addresses are bound to 127.0.0.1 so profiles are never exposed
// off-host by default.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rtcshare"
	"rtcshare/internal/cli"
	"rtcshare/internal/fixtures"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cli.Exit("rpqd", run(ctx, os.Args[1:], os.Stdout))
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rpqd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		graphPath   = fs.String("graph", "", "path to the graph file (text edge-list format)")
		demo        = fs.Bool("demo", false, "serve the paper's Fig. 1 example graph instead of -graph")
		strategy    = fs.String("strategy", "rtc", "evaluation strategy: rtc, full or no")
		planner     = fs.String("planner", "heuristic", "clause planner: heuristic or cost")
		window      = fs.Duration("window", 0, "coalescing window (0 = adaptive between -min-window and -max-window)")
		minWindow   = fs.Duration("min-window", 100*time.Microsecond, "adaptive window lower bound")
		maxWindow   = fs.Duration("max-window", 4*time.Millisecond, "adaptive window upper bound")
		noFastLane  = fs.Bool("no-fastlane", false, "disable the planner-cheap fast lane")
		maxBatch    = fs.Int("max-batch", 64, "seal a batch at this many distinct queries")
		workers     = fs.Int("workers", 0, "batch evaluation fan-out (0 = GOMAXPROCS)")
		maxInFlight = fs.Int("max-inflight", 1, "batches evaluating concurrently")
		maxQueued   = fs.Int("max-queued", 8, "sealed batches awaiting a slot before 503")
		timeout     = fs.Duration("timeout", 30*time.Second, "per-request timeout")
		noCoalesce  = fs.Bool("no-coalesce", false, "evaluate each request immediately (baseline)")
		streamChunk = fs.Int("stream-chunk", 0, "pairs per /query/stream and /query/sse chunk (0 = default 512)")
		streamLag   = fs.Uint64("stream-max-lag", 0, "abort an epoch-pinned stream once the graph advances this many epochs past it (0 = never)")
		shards      = fs.Int("shards", 0, "serve a label-partitioned in-process cluster of N engine shards (0 = single engine; incompatible with -data)")
		dataDir     = fs.String("data", "", "persistence directory (snapshot + update log); a resident snapshot wins over -graph")
		snapEvery   = fs.Int("snapshot-every", 0, "with -data, also snapshot every N effective update batches (0 = only on shutdown and /admin/snapshot)")
		probeEvery  = fs.Duration("probe-interval", time.Second, "with -data, how often to probe a degraded store to re-enable updates")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this extra address (\":port\" binds 127.0.0.1; empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g   *rtcshare.Graph
		err error
	)
	switch {
	case *demo:
		g = fixtures.Figure1()
	case *graphPath != "":
		f, ferr := os.Open(*graphPath)
		if ferr != nil {
			return ferr
		}
		g, err = rtcshare.ReadGraph(f)
		f.Close()
		if err != nil {
			return err
		}
	default:
		if *dataDir == "" {
			return fmt.Errorf("-graph is required (or -demo, or -data with a resident snapshot)")
		}
		// -data alone: the store must hold a snapshot; OpenEngine says so
		// if it does not.
	}

	var strat rtcshare.Strategy
	switch *strategy {
	case "rtc":
		strat = rtcshare.RTCSharing
	case "full":
		strat = rtcshare.FullSharing
	case "no":
		strat = rtcshare.NoSharing
	default:
		return fmt.Errorf("unknown strategy %q (want rtc, full or no)", *strategy)
	}
	var mode rtcshare.PlannerMode
	switch *planner {
	case "heuristic":
		mode = rtcshare.PlannerHeuristic
	case "cost":
		mode = rtcshare.PlannerCostBased
	default:
		return fmt.Errorf("unknown planner %q (want heuristic or cost)", *planner)
	}

	eopts := rtcshare.Options{Strategy: strat, Planner: mode}
	var (
		engine  rtcshare.ServerEngine
		persist *rtcshare.PersistentEngine
	)
	if *shards > 0 && *dataDir != "" {
		return fmt.Errorf("-shards is incompatible with -data (persistence wraps a single engine)")
	}
	if *dataDir != "" {
		st, err := rtcshare.OpenStore(*dataDir)
		if err != nil {
			return err
		}
		p, info, err := rtcshare.OpenEngine(st, g, eopts, rtcshare.PersistOptions{SnapshotEvery: *snapEvery})
		if err != nil {
			st.Close()
			return err
		}
		persist, engine = p, p.Engine
		if info.RestoredSnapshot {
			fmt.Fprintf(out, "rpqd: restored %s: snapshot epoch %d (%d RTCs, %d closures, %d relations), replayed %d batches (%d updates), epoch %d, %.1fms\n",
				*dataDir, info.SnapshotEpoch, info.RestoredRTCs, info.RestoredClosures, info.RestoredRelations,
				info.ReplayedBatches, info.ReplayedUpdates, info.Epoch, info.LoadMillis)
		} else {
			fmt.Fprintf(out, "rpqd: initialised %s from seed graph (anchor snapshot at epoch %d, %.1fms)\n",
				*dataDir, info.Epoch, info.LoadMillis)
		}
	} else if *shards > 0 {
		engine = rtcshare.NewShardedEngine(g, rtcshare.ShardOptions{Shards: *shards, Engine: eopts})
	} else {
		engine = rtcshare.NewEngine(g, eopts)
	}
	opts := rtcshare.ServerOptions{
		Persist:           persist,
		Window:            *window,
		MinWindow:         *minWindow,
		MaxWindow:         *maxWindow,
		DisableFastLane:   *noFastLane,
		MaxBatch:          *maxBatch,
		Workers:           *workers,
		MaxInFlight:       *maxInFlight,
		MaxQueuedBatches:  *maxQueued,
		RequestTimeout:    *timeout,
		DisableCoalescing: *noCoalesce,
		ProbeInterval:     *probeEvery,
		StreamChunk:       *streamChunk,
		StreamMaxLag:      *streamLag,
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *pprofAddr != "" {
		pl, perr := listenPprof(*pprofAddr)
		if perr != nil {
			l.Close()
			return perr
		}
		defer pl.Close()
		fmt.Fprintf(out, "rpqd: pprof on http://%s/debug/pprof/\n", pl.Addr())
	}
	fmt.Fprintf(out, "rpqd: graph %s\n", engine.Graph().Stats())
	if *shards > 0 {
		fmt.Fprintf(out, "rpqd: sharded engine: %d label-partitioned shards\n", *shards)
	}
	windowDesc := fmt.Sprintf("window %v", *window)
	if *window == 0 {
		windowDesc = fmt.Sprintf("window adaptive [%v, %v]", *minWindow, *maxWindow)
	}
	fmt.Fprintf(out, "rpqd: serving on http://%s (%s, max-batch %d)\n", l.Addr(), windowDesc, *maxBatch)
	err = rtcshare.ServeListener(ctx, l, engine, opts)
	if persist != nil {
		// Graceful shutdown: compact the log into a final snapshot so the
		// next boot restores instantly instead of replaying the tail.
		if info, serr := persist.Snapshot(); serr != nil {
			fmt.Fprintf(out, "rpqd: shutdown snapshot failed: %v\n", serr)
			if err == nil {
				err = serr
			}
		} else {
			fmt.Fprintf(out, "rpqd: shutdown snapshot: epoch %d, %d bytes, %.1fms\n", info.Epoch, info.Bytes, info.WallMillis)
		}
		if cerr := persist.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// listenPprof starts the net/http/pprof endpoints on their own listener
// and mux, so profiling never shares a port (or a handler table) with
// the query service. A bare ":port" address is bound to 127.0.0.1; to
// expose profiles beyond the host, spell out the interface explicitly.
// Closing the returned listener stops the serving goroutine.
func listenPprof(addr string) (net.Listener, error) {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(l, mux) //nolint:errcheck // exits when the listener closes
	return l, nil
}
