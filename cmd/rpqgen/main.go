// Command rpqgen generates the paper's evaluation datasets as graph
// files in the text edge-list format.
//
// Usage:
//
//	rpqgen -out rmat3.txt -rmat 3 [-scale 13] [-seed 2022]
//	rpqgen -out youtube.txt -dataset youtube [-seed 2022]
//	rpqgen -out custom.txt -vertices 4096 -edges 65536 -labels 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rtcshare/internal/cli"
	"rtcshare/internal/datagen"
	"rtcshare/internal/graph"
)

func main() {
	cli.Exit("rpqgen", run(os.Args[1:]))
}

func run(args []string) error {
	fs := flag.NewFlagSet("rpqgen", flag.ContinueOnError)
	var (
		out      = fs.String("out", "", "output file (required; - for stdout)")
		rmatN    = fs.Int("rmat", -1, "generate the paper's RMAT_N (0..6)")
		scale    = fs.Int("scale", 13, "RMAT scale exponent: |V| = 2^scale")
		dataset  = fs.String("dataset", "", "real-dataset stand-in: yago2s, robots, advogato or youtube")
		vertices = fs.Int("vertices", 0, "custom |V|")
		edges    = fs.Int("edges", 0, "custom |E|")
		labels   = fs.Int("labels", 4, "custom |Σ|")
		seed     = fs.Int64("seed", 2022, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var (
		g   *graph.Graph
		err error
	)
	switch {
	case *rmatN >= 0:
		g, err = datagen.PaperRMATN(*rmatN, *scale, *seed)
	case *dataset != "":
		spec, ok := lookupDataset(*dataset)
		if !ok {
			return fmt.Errorf("unknown dataset %q", *dataset)
		}
		g, err = spec.Generate(*seed)
	case *vertices > 0:
		g, err = datagen.RMAT(datagen.RMATConfig{
			Vertices: *vertices, Edges: *edges, Labels: *labels, Seed: *seed,
		})
	default:
		return fmt.Errorf("one of -rmat, -dataset or -vertices is required")
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := graph.Write(w, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "rpqgen: wrote %s (%s)\n", *out, g.Stats())
	return nil
}

func lookupDataset(name string) (datagen.DatasetSpec, bool) {
	for _, s := range datagen.RealDatasets() {
		if strings.EqualFold(s.Name, name) || strings.EqualFold(strings.TrimSuffix(s.Name, "2s"), name) {
			return s, true
		}
	}
	return datagen.DatasetSpec{}, false
}
