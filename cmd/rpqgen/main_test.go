package main

import (
	"os"
	"path/filepath"
	"rtcshare/internal/cli"
	"testing"

	"rtcshare/internal/graph"
)

func TestGenerateRMAT(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.txt")
	if err := run([]string{"-out", out, "-rmat", "1", "-scale", "7", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 128 || g.NumEdges() != 256 {
		t.Fatalf("got %v, want |V|=128 |E|=256", g.Stats())
	}
}

func TestGenerateDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "robots.txt")
	if err := run([]string{"-out", out, "-dataset", "robots"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := graph.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1725 || g.NumEdges() != 3596 {
		t.Fatalf("got %v, want Robots' Table IV sizes", g.Stats())
	}
}

func TestGenerateCustom(t *testing.T) {
	out := filepath.Join(t.TempDir(), "c.txt")
	if err := run([]string{"-out", out, "-vertices", "50", "-edges", "100", "-labels", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateErrors(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.txt")
	cases := [][]string{
		{},                                 // no -out
		{"-out", out},                      // no mode
		{"-out", out, "-dataset", "bogus"}, // unknown dataset
		{"-out", out, "-rmat", "1", "-scale", "-3"},
		{"-out", filepath.Join(t.TempDir(), "no", "dir", "x.txt"), "-rmat", "1", "-scale", "5"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): want error", i, args)
		}
	}
}

func TestLookupDataset(t *testing.T) {
	for _, name := range []string{"robots", "Advogato", "youtube", "yago2s", "yago"} {
		if _, ok := lookupDataset(name); !ok {
			t.Errorf("lookupDataset(%q) failed", name)
		}
	}
	if _, ok := lookupDataset("mystery"); ok {
		t.Error("lookupDataset(mystery) succeeded")
	}
}

func TestHelpExitsZero(t *testing.T) {
	if err := run([]string{"-h"}); cli.ExitCode(err) != 0 {
		t.Fatalf("-h must map to exit 0, got err %v", err)
	}
	if err := run([]string{"-no-such-flag"}); cli.ExitCode(err) != 1 {
		t.Fatalf("bad flag must map to exit 1, got err %v", err)
	}
}
