package main

import "testing"

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if err := run([]string{
		"-experiment", "table4", "-scale", "6", "-maxn", "1", "-sets", "1",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigTiny(t *testing.T) {
	if err := run([]string{
		"-experiment", "fig13a", "-scale", "6", "-maxn", "1", "-sets", "1",
		"-rpqs", "1", "-seed", "5", "-verify",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                       // no experiment
		{"-experiment", "bogus"}, // unknown id
		{"-experiment", "fig10a", "-scale", "99"}, // bad config
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): want error", i, args)
		}
	}
}
