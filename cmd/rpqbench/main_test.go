package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtcshare/internal/cli"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
	// -experiment list is the same registry listing, for people who
	// guess the spelling.
	if err := run([]string{"-experiment", "list"}); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownExperimentListsIDs: the error for a bad id names the valid
// experiments instead of just pointing at -list.
func TestUnknownExperimentListsIDs(t *testing.T) {
	err := run([]string{"-experiment", "bogus"})
	if err == nil {
		t.Fatal("want error for unknown experiment")
	}
	for _, id := range []string{"latency", "serve", "planner", "fig10a"} {
		if !strings.Contains(err.Error(), id) {
			t.Errorf("error %q does not list experiment %q", err, id)
		}
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if err := run([]string{
		"-experiment", "table4", "-scale", "6", "-maxn", "1", "-sets", "1",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigTiny(t *testing.T) {
	if err := run([]string{
		"-experiment", "fig13a", "-scale", "6", "-maxn", "1", "-sets", "1",
		"-rpqs", "1", "-seed", "5", "-verify",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlannerJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{
		"-experiment", "planner", "-scale", "6", "-maxn", "1", "-sets", "1", "-rpqs", "2",
		"-json", path,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Experiment string `json:"experiment"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("wrote invalid JSON: %v", err)
	}
	if report.Experiment != "planner" {
		t.Errorf("experiment = %q, want planner", report.Experiment)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                       // no experiment
		{"-experiment", "bogus"}, // unknown id
		{"-experiment", "fig10a", "-scale", "99"},    // bad config
		{"-experiment", "all", "-json", "x.json"},    // -json needs one experiment
		{"-experiment", "table4", "-json", "x.json"}, // no structured report
		{"-experiment", "planner", "-scale", "6", "-maxn", "1", "-sets", "1",
			"-json", "/nonexistent-dir/x.json"}, // unwritable path
		{"-experiment", "latency", "-rates", "80,abc"},            // unparsable rate
		{"-experiment", "latency", "-rates", "-5"},                // out-of-range rate
		{"-experiment", "latency", "-latency-requests", "200000"}, // over the config cap
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): want error", i, args)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	if err := run([]string{"-h"}); cli.ExitCode(err) != 0 {
		t.Fatalf("-h must map to exit 0, got err %v", err)
	}
	if err := run([]string{"-no-such-flag"}); cli.ExitCode(err) != 1 {
		t.Fatalf("bad flag must map to exit 1, got err %v", err)
	}
}
