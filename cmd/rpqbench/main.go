// Command rpqbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	rpqbench -experiment fig10a            # one experiment
//	rpqbench -experiment planner           # cost-based vs rightmost planner
//	rpqbench -experiment layout            # map-set vs columnar, bfs vs bitset
//	rpqbench -experiment updates           # incremental maintenance vs rebuild
//	rpqbench -experiment serve             # HTTP batch coalescing on vs off
//	rpqbench -experiment latency           # open-loop tail latency, fixed vs adaptive
//	rpqbench -experiment stream            # time-to-first-pair, sealed vs pull-stream
//	rpqbench -experiment all               # everything (minutes)
//	rpqbench -experiment all -paper        # the paper's full protocol (hours)
//	rpqbench -experiment planner -json out.json   # structured report
//	rpqbench -experiment list              # show the experiment registry (same as -list)
//
// Scale knobs (-scale, -sets, -rpqs, …) trade fidelity for time; the
// default configuration reproduces every trend in minutes on a laptop.
// The committed BENCH_*.json files record the baselines; DESIGN.md
// discusses each experiment's findings. The latency experiment takes
// -rates (comma-separated offered rates in queries/second) and
// -latency-requests (arrivals per leg).
//
// -json writes a structured report (experiment id, config, per-row wall
// times, B/op and allocs/op, shared-structure sizes, plan choices) for
// experiments that support it (planner, layout, updates, serve, latency, stream,
// fig16), so BENCH_*.json artifacts form a machine-readable perf
// trajectory; CI emits one per run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"rtcshare/internal/bench"
	"rtcshare/internal/cli"
)

func main() {
	cli.Exit("rpqbench", run(os.Args[1:]))
}

func run(args []string) error {
	fs := flag.NewFlagSet("rpqbench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "", "experiment id (see -list) or 'all'")
		list       = fs.Bool("list", false, "list available experiments")
		paper      = fs.Bool("paper", false, "use the paper's full protocol (2^13-vertex RMAT, 90 sets; hours)")
		scale      = fs.Int("scale", 0, "override the RMAT scale exponent")
		maxN       = fs.Int("maxn", -1, "override the largest RMAT_N")
		sets       = fs.Int("sets", 0, "override the number of multiple-RPQ sets")
		rpqs       = fs.Int("rpqs", 0, "override #RPQs per set for the degree sweep")
		seed       = fs.Int64("seed", 0, "override the dataset/workload seed")
		verify     = fs.Bool("verify", false, "cross-check result counts across strategies")
		workers    = fs.Int("workers", 0, "override the largest worker fan-out of the parallel sweep (fig16)")
		clients    = fs.Int("clients", 0, "override the closed-loop client count of the serve experiment")
		rates      = fs.String("rates", "", "comma-separated offered rates (qps) for the latency experiment")
		latencyReq = fs.Int("latency-requests", 0, "override the arrivals per latency-experiment leg")
		jsonPath   = fs.String("json", "", "write the experiment's structured report to this path (planner, layout, updates, serve, latency, stream, fig16)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list || *experiment == "list" {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if *experiment == "" {
		return fmt.Errorf("-experiment is required (or -list)")
	}

	cfg := bench.DefaultConfig()
	if *paper {
		cfg = bench.PaperConfig()
	}
	if *scale > 0 {
		cfg.ScaleExp = *scale
	}
	if *maxN >= 0 {
		cfg.MaxN = *maxN
	}
	if *sets > 0 {
		cfg.NumSets = *sets
	}
	if *rpqs > 0 {
		cfg.NumRPQs = *rpqs
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *rates != "" {
		for _, part := range strings.Split(*rates, ",") {
			r, perr := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if perr != nil {
				return fmt.Errorf("-rates: %q is not a number", part)
			}
			cfg.Rates = append(cfg.Rates, r)
		}
	}
	if *latencyReq > 0 {
		cfg.LatencyRequests = *latencyReq
	}
	cfg.Verify = cfg.Verify || *verify

	if *experiment == "all" {
		if *jsonPath != "" {
			return fmt.Errorf("-json needs a single experiment, not 'all'")
		}
		return bench.RunAll(os.Stdout, cfg)
	}
	e, ok := bench.Lookup(*experiment)
	if !ok {
		ids := make([]string, 0, len(bench.Experiments()))
		for _, reg := range bench.Experiments() {
			ids = append(ids, reg.ID)
		}
		return fmt.Errorf("unknown experiment %q; valid: %s (or 'all')", *experiment, strings.Join(ids, ", "))
	}
	fmt.Printf("=== %s — %s ===\n", e.ID, e.Title)
	if *jsonPath == "" {
		return e.Run(os.Stdout, cfg)
	}
	if e.JSON == nil {
		return fmt.Errorf("experiment %q has no structured report; -json supports planner, layout, updates, serve, latency, stream and fig16", e.ID)
	}
	report, err := e.JSON(os.Stdout, cfg)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(bench.JSONReport{Experiment: e.ID, Title: e.Title, Report: report}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *jsonPath)
	return nil
}
