// Command rpq evaluates regular path queries over an edge-labeled graph.
//
// Usage:
//
//	rpq -graph g.txt [-strategy rtc|full|no] [-planner heuristic|cost]
//	    [-explain] [-stats] [-limit N] query...
//
// The graph file uses the text edge-list format ("src label dst" lines,
// optional "%vertices N" directive). Each query is an RPQ such as
// "d.(b.c)+.c"; '·' and '/' also work as concatenation operators. With
// several queries, closure structures are shared between them exactly as
// the engine shares them across a multiple-RPQ set.
//
// -planner cost enables the cost-based clause planner: every closure
// anchor is considered in both join directions, plus a direct-automaton
// bypass, priced by cardinality estimates from the graph's per-label
// statistics. The default heuristic planner is the paper's pipeline
// (rightmost closure, forward join). -explain prints each query's chosen
// plan with estimated vs actual cardinalities (the query still runs).
package main

import (
	"flag"
	"fmt"
	"os"

	"rtcshare/internal/cli"
	"rtcshare/internal/core"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/plan"
)

func main() {
	cli.Exit("rpq", run(os.Args[1:]))
}

func run(args []string) error {
	fs := flag.NewFlagSet("rpq", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to the graph file (required)")
		strategy  = fs.String("strategy", "rtc", "evaluation strategy: rtc, full or no")
		planner   = fs.String("planner", "heuristic", "clause planner: heuristic (rightmost-forward) or cost")
		explain   = fs.Bool("explain", false, "print each query's plan with estimated vs actual cardinalities")
		stats     = fs.Bool("stats", false, "print the timing split and sharing statistics")
		limit     = fs.Int("limit", 20, "print at most this many result pairs per query (0 = all)")
		useDFA    = fs.Bool("dfa", false, "determinise query automata before traversal")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no queries given")
	}
	strat, err := parseStrategy(*strategy)
	if err != nil {
		return err
	}
	mode, err := plan.ParseMode(*planner)
	if err != nil {
		return err
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := graph.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s\n", g.Stats())

	engine := core.New(g, core.Options{Strategy: strat, Planner: mode, UseDFA: *useDFA})
	for _, q := range fs.Args() {
		if *explain {
			p, err := engine.ExplainAnalyzeQuery(q)
			if err != nil {
				return err
			}
			fmt.Print(p.String())
			continue
		}
		res, err := engine.EvaluateQuery(q)
		if err != nil {
			return err
		}
		printResult(q, res, *limit)
	}
	if *stats {
		st := engine.Stats()
		fmt.Printf("stats: total=%v shared_data=%v pre_join=%v remainder=%v cache_hits=%d cache_misses=%d\n",
			st.Total(), st.SharedData, st.PreJoin, st.Remainder, st.CacheHits, st.CacheMisses)
		for _, s := range engine.SharedSummaries() {
			fmt.Printf("shared: R=%s pairs=%d reduced_vertices=%d |VR|=%d avg_scc=%.2f\n",
				s.R, s.SharedPairs, s.ReducedVertices, s.EdgeReducedVertices, s.AvgSCCSize)
		}
	}
	return nil
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "rtc":
		return core.RTCSharing, nil
	case "full":
		return core.FullSharing, nil
	case "no":
		return core.NoSharing, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (want rtc, full or no)", s)
}

func printResult(q string, res *pairs.Set, limit int) {
	fmt.Printf("query %s: %d pairs\n", q, res.Len())
	sorted := res.Sorted()
	if limit > 0 && len(sorted) > limit {
		sorted = sorted[:limit]
	}
	for _, p := range sorted {
		fmt.Printf("  (%d, %d)\n", p.Src, p.Dst)
	}
	if limit > 0 && res.Len() > limit {
		fmt.Printf("  … %d more\n", res.Len()-limit)
	}
}
