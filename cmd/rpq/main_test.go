package main

import (
	"os"
	"path/filepath"
	"rtcshare/internal/cli"
	"testing"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := `%vertices 4
0 a 1
1 b 2
2 b 0
2 c 3
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEvaluatesQuery(t *testing.T) {
	path := writeTestGraph(t)
	for _, strategy := range []string{"rtc", "full", "no"} {
		if err := run([]string{"-graph", path, "-strategy", strategy, "a.b+.c"}); err != nil {
			t.Errorf("strategy %s: %v", strategy, err)
		}
	}
}

func TestRunWithStatsAndLimit(t *testing.T) {
	path := writeTestGraph(t)
	if err := run([]string{"-graph", path, "-stats", "-limit", "1", "b+", "a.b"}); err != nil {
		t.Error(err)
	}
	if err := run([]string{"-graph", path, "-limit", "0", "-dfa", "b+"}); err != nil {
		t.Error(err)
	}
}

func TestRunExplainAndPlanner(t *testing.T) {
	path := writeTestGraph(t)
	for _, planner := range []string{"heuristic", "cost"} {
		if err := run([]string{"-graph", path, "-planner", planner, "-explain", "a.b+.c", "a.b"}); err != nil {
			t.Errorf("planner %s: %v", planner, err)
		}
		if err := run([]string{"-graph", path, "-planner", planner, "a.b+.c"}); err != nil {
			t.Errorf("planner %s evaluate: %v", planner, err)
		}
	}
	if err := run([]string{"-graph", path, "-explain", "(("}); err == nil {
		t.Error("explain on a parse error must fail")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	cases := [][]string{
		{},               // no -graph
		{"-graph", path}, // no queries
		{"-graph", path, "-strategy", "bogus", "a"},
		{"-graph", path, "-planner", "bogus", "a"},
		{"-graph", path, "(("}, // parse error
		{"-graph", filepath.Join(t.TempDir(), "missing.txt"), "a"},
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("case %d (%v): want error", i, args)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in string
		ok bool
	}{{"rtc", true}, {"full", true}, {"no", true}, {"", false}, {"RTC", false}} {
		_, err := parseStrategy(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("parseStrategy(%q) err=%v", tc.in, err)
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	if err := run([]string{"-h"}); cli.ExitCode(err) != 0 {
		t.Fatalf("-h must map to exit 0, got err %v", err)
	}
	if err := run([]string{"-no-such-flag"}); cli.ExitCode(err) != 1 {
		t.Fatalf("bad flag must map to exit 1, got err %v", err)
	}
}
