// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablations of the design choices called out in DESIGN.md.
//
// Run with: go test -bench=. -benchmem
//
// The benchmarks use reduced scales (2^8-vertex RMAT, 2 query sets) so
// the full suite completes in minutes; the shapes (who wins, how ratios
// move with degree and #RPQs) match the paper. For the full protocol use
// cmd/rpqbench -paper. Custom metrics reported where time is not the
// figure's y-axis: pairs (Fig. 12), vertices (Fig. 13).
package rtcshare_test

import (
	"testing"

	"rtcshare"
	"rtcshare/internal/bench"
	"rtcshare/internal/core"
	"rtcshare/internal/datagen"
	"rtcshare/internal/eval"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
	"rtcshare/internal/scc"
	"rtcshare/internal/tc"
	"rtcshare/internal/workload"
)

// benchScaleExp keeps each benchmark iteration sub-second.
const benchScaleExp = 8

func benchConfig() bench.RunConfig {
	cfg := bench.DefaultConfig()
	cfg.ScaleExp = benchScaleExp
	cfg.NumSets = 2
	cfg.RealVertices = 512
	cfg.YagoVertices = 1024
	return cfg
}

// mustRMAT builds the paper's RMAT_N at bench scale.
func mustRMAT(b *testing.B, n int) *graph.Graph {
	b.Helper()
	g, err := datagen.PaperRMATN(n, benchScaleExp, 2022)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// mustWorkload draws numSets batch-unit sets over g's labels.
func mustWorkload(b *testing.B, g *graph.Graph, numSets int) []workload.Set {
	b.Helper()
	sets, err := workload.Generate(g.Dict(), workload.DefaultConfig(numSets, 7))
	if err != nil {
		b.Fatal(err)
	}
	return sets
}

// runSets evaluates the first k queries of each set with a fresh engine
// per set, the paper's sharing discipline.
func runSets(b *testing.B, g *graph.Graph, sets []workload.Set, k int, strategy core.Strategy) {
	b.Helper()
	for _, set := range sets {
		engine := core.New(g, core.Options{Strategy: strategy})
		for _, q := range set.Queries[:k] {
			if _, err := engine.Evaluate(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Table III: computing R+G (Full, on G_R) vs R̄+Ḡ (RTC, on Ḡ_R) ---

func benchTableIIIGraph(b *testing.B) *graph.DiGraph {
	g := mustRMAT(b, 3)
	rg := eval.Evaluate(g, rtcshare.MustParseQuery("l0.l1"))
	return rtc.EdgeReduce(g.NumVertices(), rg)
}

func BenchmarkTableIII_SharedData_Full(b *testing.B) {
	gr := benchTableIIIGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		closure := tc.BFS(gr)
		b.ReportMetric(float64(closure.NumPairs()), "pairs")
	}
}

func BenchmarkTableIII_SharedData_RTC(b *testing.B) {
	gr := benchTableIIIGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		structure := rtc.Compute(gr, rtc.BFSClosure)
		b.ReportMetric(float64(structure.NumSharedPairs()), "pairs")
	}
}

// --- Table IV: dataset generation and statistics ---

func BenchmarkTableIV_GenerateDatasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.RunTableIV(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// --- Fig. 10(a): query response time vs vertex degree (synthetic) ---

func benchFig10a(b *testing.B, n int, strategy core.Strategy) {
	g := mustRMAT(b, n)
	sets := mustWorkload(b, g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSets(b, g, sets, 4, strategy)
	}
}

func BenchmarkFig10a_RMAT0_No(b *testing.B)   { benchFig10a(b, 0, core.NoSharing) }
func BenchmarkFig10a_RMAT0_Full(b *testing.B) { benchFig10a(b, 0, core.FullSharing) }
func BenchmarkFig10a_RMAT0_RTC(b *testing.B)  { benchFig10a(b, 0, core.RTCSharing) }
func BenchmarkFig10a_RMAT3_No(b *testing.B)   { benchFig10a(b, 3, core.NoSharing) }
func BenchmarkFig10a_RMAT3_Full(b *testing.B) { benchFig10a(b, 3, core.FullSharing) }
func BenchmarkFig10a_RMAT3_RTC(b *testing.B)  { benchFig10a(b, 3, core.RTCSharing) }
func BenchmarkFig10a_RMAT6_No(b *testing.B)   { benchFig10a(b, 6, core.NoSharing) }
func BenchmarkFig10a_RMAT6_Full(b *testing.B) { benchFig10a(b, 6, core.FullSharing) }
func BenchmarkFig10a_RMAT6_RTC(b *testing.B)  { benchFig10a(b, 6, core.RTCSharing) }

// --- Fig. 10(b): query response time on real-dataset stand-ins ---

func benchFig10b(b *testing.B, spec datagen.DatasetSpec, strategy core.Strategy) {
	spec = spec.ScaledTo(512)
	g, err := spec.Generate(11)
	if err != nil {
		b.Fatal(err)
	}
	sets := mustWorkload(b, g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSets(b, g, sets, 4, strategy)
	}
}

func BenchmarkFig10b_Yago2s_Full(b *testing.B) {
	benchFig10b(b, datagen.Yago2sStandIn, core.FullSharing)
}
func BenchmarkFig10b_Yago2s_RTC(b *testing.B)    { benchFig10b(b, datagen.Yago2sStandIn, core.RTCSharing) }
func BenchmarkFig10b_Robots_Full(b *testing.B)   { benchFig10b(b, datagen.Robots, core.FullSharing) }
func BenchmarkFig10b_Robots_RTC(b *testing.B)    { benchFig10b(b, datagen.Robots, core.RTCSharing) }
func BenchmarkFig10b_Advogato_Full(b *testing.B) { benchFig10b(b, datagen.Advogato, core.FullSharing) }
func BenchmarkFig10b_Advogato_RTC(b *testing.B)  { benchFig10b(b, datagen.Advogato, core.RTCSharing) }
func BenchmarkFig10b_Youtube_No(b *testing.B)    { benchFig10b(b, datagen.Youtube, core.NoSharing) }
func BenchmarkFig10b_Youtube_Full(b *testing.B)  { benchFig10b(b, datagen.Youtube, core.FullSharing) }
func BenchmarkFig10b_Youtube_RTC(b *testing.B)   { benchFig10b(b, datagen.Youtube, core.RTCSharing) }

// --- Fig. 11: the Shared_Data and PreG⋈R+G parts in isolation ---

// The Shared_Data part is TableIII above; this isolates the join part on
// a fixed Pre_G and closure (Algorithm 2 vs the pair-level join).
func benchFig11Join(b *testing.B, useRTC bool) {
	g := mustRMAT(b, 4)
	preG := pairs.RelationFromSet(g.NumVertices(), eval.Evaluate(g, rtcshare.MustParseQuery("l3")))
	rg := eval.Evaluate(g, rtcshare.MustParseQuery("l0.l1"))
	gr := rtc.EdgeReduce(g.NumVertices(), rg)
	structure := rtc.Compute(gr, rtc.BFSClosure)
	closure := tc.BFS(gr)
	post := rtcshare.MustParseQuery("l2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := core.New(g, core.Options{})
		var err error
		if useRTC {
			_, err = engine.EvalBatchUnit(preG, structure, rpq.ClosurePlus, post)
		} else {
			_, err = engine.EvalBatchUnitFull(preG, closure, rpq.ClosurePlus, post)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_PreJoin_Full(b *testing.B) { benchFig11Join(b, false) }
func BenchmarkFig11_PreJoin_RTC(b *testing.B)  { benchFig11Join(b, true) }

// --- Fig. 12: shared data size (pairs); time is the computation cost ---

func benchFig12(b *testing.B, n int, useRTC bool) {
	g := mustRMAT(b, n)
	rg := eval.Evaluate(g, rtcshare.MustParseQuery("l0.l1"))
	gr := rtc.EdgeReduce(g.NumVertices(), rg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if useRTC {
			s := rtc.Compute(gr, rtc.BFSClosure)
			b.ReportMetric(float64(s.NumSharedPairs()), "pairs")
		} else {
			c := tc.BFS(gr)
			b.ReportMetric(float64(c.NumPairs()), "pairs")
		}
	}
}

func BenchmarkFig12_RMAT1_Full(b *testing.B) { benchFig12(b, 1, false) }
func BenchmarkFig12_RMAT1_RTC(b *testing.B)  { benchFig12(b, 1, true) }
func BenchmarkFig12_RMAT5_Full(b *testing.B) { benchFig12(b, 5, false) }
func BenchmarkFig12_RMAT5_RTC(b *testing.B)  { benchFig12(b, 5, true) }

// --- Fig. 13: number of vertices |V_R| vs |V̄_R̄| ---

func benchFig13(b *testing.B, n int) {
	g := mustRMAT(b, n)
	rg := eval.Evaluate(g, rtcshare.MustParseQuery("l0.l1"))
	gr := rtc.EdgeReduce(g.NumVertices(), rg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comps := scc.Tarjan(gr)
		b.ReportMetric(float64(gr.NumActive()), "VR")
		b.ReportMetric(float64(comps.NumComponents()), "VbarR")
	}
}

func BenchmarkFig13_RMAT1(b *testing.B) { benchFig13(b, 1) }
func BenchmarkFig13_RMAT5(b *testing.B) { benchFig13(b, 5) }

// --- Fig. 14: query response time vs #RPQs ---

func benchFig14(b *testing.B, k int, strategy core.Strategy) {
	g := mustRMAT(b, 3)
	sets := mustWorkload(b, g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSets(b, g, sets, k, strategy)
	}
}

func BenchmarkFig14_1RPQ_No(b *testing.B)    { benchFig14(b, 1, core.NoSharing) }
func BenchmarkFig14_1RPQ_Full(b *testing.B)  { benchFig14(b, 1, core.FullSharing) }
func BenchmarkFig14_1RPQ_RTC(b *testing.B)   { benchFig14(b, 1, core.RTCSharing) }
func BenchmarkFig14_10RPQ_No(b *testing.B)   { benchFig14(b, 10, core.NoSharing) }
func BenchmarkFig14_10RPQ_Full(b *testing.B) { benchFig14(b, 10, core.FullSharing) }
func BenchmarkFig14_10RPQ_RTC(b *testing.B)  { benchFig14(b, 10, core.RTCSharing) }

// --- Fig. 15 isolates the amortisation: Shared_Data per set size ---

func BenchmarkFig15_SharedDataAmortisation(b *testing.B) {
	g := mustRMAT(b, 3)
	sets := mustWorkload(b, g, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, set := range sets {
			engine := core.New(g, core.Options{Strategy: core.RTCSharing})
			for _, q := range set.Queries[:10] {
				if _, err := engine.Evaluate(q); err != nil {
					b.Fatal(err)
				}
			}
			st := engine.Stats()
			b.ReportMetric(float64(st.SharedData.Nanoseconds())/10, "shared-ns/rpq")
		}
	}
}

// --- Ablations (DESIGN.md §6) ---

// AblationJoinDedup: Algorithm 2's union-at-each-join-step vs the naive
// pair-level join, on identical inputs — covered by Fig11_PreJoin above;
// this variant measures it end to end through the engine.
func benchAblationDedup(b *testing.B, strategy core.Strategy) {
	g := mustRMAT(b, 5)
	sets := mustWorkload(b, g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runSets(b, g, sets, 4, strategy)
	}
}

func BenchmarkAblationJoinDedup_PairLevel(b *testing.B) { benchAblationDedup(b, core.FullSharing) }
func BenchmarkAblationJoinDedup_SCCLevel(b *testing.B)  { benchAblationDedup(b, core.RTCSharing) }

// AblationVertexReduction: computing the closure with and without the
// vertex-level reduction.
func BenchmarkAblationVertexReduction_Off(b *testing.B) {
	gr := benchTableIIIGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.BFS(gr)
	}
}

func BenchmarkAblationVertexReduction_On(b *testing.B) {
	gr := benchTableIIIGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comps := scc.Tarjan(gr)
		cond := scc.Condense(gr, comps)
		tc.BFS(cond)
	}
}

// AblationTCAlgorithm: BFS vs Purdom vs Nuutila on the same graph.
func benchTCAlgo(b *testing.B, algo func(*graph.DiGraph) *tc.Closure) {
	gr := benchTableIIIGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo(gr)
	}
}

func BenchmarkAblationTCAlgorithm_BFS(b *testing.B)     { benchTCAlgo(b, tc.BFS) }
func BenchmarkAblationTCAlgorithm_Purdom(b *testing.B)  { benchTCAlgo(b, tc.Purdom) }
func BenchmarkAblationTCAlgorithm_Nuutila(b *testing.B) { benchTCAlgo(b, tc.Nuutila) }

// AblationRTCCache: the RTC cache on vs off across a query set with a
// shared sub-query.
func benchRTCCache(b *testing.B, disable bool) {
	g := mustRMAT(b, 3)
	sets := mustWorkload(b, g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := core.New(g, core.Options{Strategy: core.RTCSharing, DisableCache: disable})
		for _, q := range sets[0].Queries {
			if _, err := engine.Evaluate(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAblationRTCCache_On(b *testing.B)  { benchRTCCache(b, false) }
func BenchmarkAblationRTCCache_Off(b *testing.B) { benchRTCCache(b, true) }

// AblationDFA: NFA vs DFA product evaluation for NoSharing.
func benchDFA(b *testing.B, useDFA bool) {
	g := mustRMAT(b, 3)
	q := rtcshare.MustParseQuery("l0.(l1.l2)+.l3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := eval.New(g, q, eval.Options{UseDFA: useDFA})
		ev.EvaluateAll()
	}
}

func BenchmarkAblationDFA_NFA(b *testing.B) { benchDFA(b, false) }
func BenchmarkAblationDFA_DFA(b *testing.B) { benchDFA(b, true) }
