package rtcshare_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"rtcshare"
)

// fig1 builds the paper's running example graph through the public API.
func fig1(t testing.TB) *rtcshare.Graph {
	t.Helper()
	b := rtcshare.NewGraphBuilder(10)
	edges := []struct {
		src   rtcshare.VID
		label string
		dst   rtcshare.VID
	}{
		{7, "d", 4}, {4, "b", 1}, {1, "c", 2}, {2, "c", 5}, {2, "b", 5},
		{2, "b", 3}, {3, "b", 2}, {5, "b", 6}, {5, "c", 6}, {5, "c", 4},
		{6, "c", 3}, {0, "a", 1}, {7, "a", 8}, {8, "e", 9}, {9, "f", 8},
	}
	for _, e := range edges {
		b.MustAddEdge(e.src, e.label, e.dst)
	}
	return b.Build()
}

func TestPublicQuickstart(t *testing.T) {
	g := fig1(t)
	res, err := rtcshare.Evaluate(g, "d·(b·c)+·c")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || !res.Contains(7, 5) || !res.Contains(7, 3) {
		t.Fatalf("got %v, want {(7,5),(7,3)}", res.Sorted())
	}
}

func TestPublicStrategies(t *testing.T) {
	g := fig1(t)
	for _, s := range []rtcshare.Strategy{rtcshare.RTCSharing, rtcshare.FullSharing, rtcshare.NoSharing} {
		e := rtcshare.NewEngine(g, rtcshare.Options{Strategy: s})
		res, err := e.EvaluateQuery("d.(b.c)+.c")
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Len() != 2 {
			t.Errorf("%v: %d pairs, want 2", s, res.Len())
		}
	}
}

func TestPublicEngineStats(t *testing.T) {
	g := fig1(t)
	e := rtcshare.NewEngine(g, rtcshare.Options{})
	queries := []string{"a.(b.c)+.c", "d.(b.c)+.c", "(b.c)*.c"}
	for _, q := range queries {
		if _, err := e.EvaluateQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Queries != len(queries) {
		t.Errorf("Queries = %d, want %d", st.Queries, len(queries))
	}
	if st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Errorf("cache hits/misses = %d/%d, want 2/1 (b·c shared)", st.CacheHits, st.CacheMisses)
	}
	sums := e.SharedSummaries()
	if len(sums) != 1 || sums[0].R != "b.c" {
		t.Errorf("summaries = %+v", sums)
	}
}

func TestPublicGraphIO(t *testing.T) {
	g := fig1(t)
	var buf bytes.Buffer
	if err := rtcshare.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := rtcshare.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rtcshare.Evaluate(g2, "d.(b.c)+.c")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("round-tripped graph gives %d pairs, want 2", res.Len())
	}
}

func TestPublicParseQuery(t *testing.T) {
	e, err := rtcshare.ParseQuery("a.(b|c)+")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "a.(b|c)+" {
		t.Errorf("String = %q", e.String())
	}
	if _, err := rtcshare.ParseQuery("(("); err == nil {
		t.Error("want parse error")
	}
}

func TestPublicGenerateRMAT(t *testing.T) {
	g, err := rtcshare.GenerateRMAT(rtcshare.RMATConfig{Vertices: 64, Edges: 256, Labels: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 256 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	eng := rtcshare.NewEngine(g, rtcshare.Options{})
	if _, err := eng.EvaluateQuery("l0.l1+.l2"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicEvaluateParallel(t *testing.T) {
	g := fig1(t)
	want, err := rtcshare.Evaluate(g, "d.(b.c)+.c")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rtcshare.EvaluateParallel(g, "d.(b.c)+.c", 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("parallel %v != serial %v", got.Sorted(), want.Sorted())
	}
	if _, err := rtcshare.EvaluateParallel(g, "((", 2); err == nil {
		t.Error("want parse error")
	}
}

func TestPublicExplain(t *testing.T) {
	g := fig1(t)
	e := rtcshare.NewEngine(g, rtcshare.Options{})
	plan, err := e.ExplainQuery("d.(b.c)+.c")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Clauses) != 1 || plan.Clauses[0].R != "b.c" {
		t.Fatalf("plan = %+v", plan)
	}
	if plan.String() == "" {
		t.Error("empty plan rendering")
	}
}

func TestPublicPlannerModes(t *testing.T) {
	g := fig1(t)
	want, err := rtcshare.Evaluate(g, "d.(b.c)+.c")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []rtcshare.PlannerMode{rtcshare.PlannerHeuristic, rtcshare.PlannerCostBased} {
		e := rtcshare.NewEngine(g, rtcshare.Options{Planner: mode})
		got, err := e.EvaluateQuery("d.(b.c)+.c")
		if err != nil {
			t.Fatalf("planner %v: %v", mode, err)
		}
		if !got.Equal(want) {
			t.Errorf("planner %v: %d pairs, want %d", mode, got.Len(), want.Len())
		}
		plan, err := e.ExplainAnalyzeQuery("d.(b.c)+.c")
		if err != nil {
			t.Fatalf("planner %v explain analyze: %v", mode, err)
		}
		if !plan.Analyzed || plan.ActualResultPairs != want.Len() {
			t.Errorf("planner %v: analyzed plan %+v, want %d actual pairs", mode, plan, want.Len())
		}
		if plan.Clauses[0].Kind == "" || plan.Clauses[0].Direction == "" {
			t.Errorf("planner %v: plan missing kind/direction: %+v", mode, plan.Clauses[0])
		}
	}
}

func TestPublicInverseLabels(t *testing.T) {
	g := fig1(t)
	res, err := rtcshare.Evaluate(g, "^d")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Contains(4, 7) {
		t.Fatalf("(^d)_G = %v, want {(4,7)}", res.Sorted())
	}
}

func TestPublicTCAlgorithms(t *testing.T) {
	g := fig1(t)
	for _, algo := range []rtcshare.TCAlgorithm{rtcshare.BFSClosure, rtcshare.PurdomClosure, rtcshare.NuutilaClosure} {
		e := rtcshare.NewEngine(g, rtcshare.Options{TCAlgo: algo})
		res, err := e.EvaluateQuery("d.(b.c)+.c")
		if err != nil || res.Len() != 2 {
			t.Errorf("algo %v: res=%v err=%v", algo, res, err)
		}
	}
}

func TestPublicEvaluateBatch(t *testing.T) {
	g := fig1(t)
	queries := []string{"d.(b.c)+.c", "a.(b.c)+.b", "d.(b.c)+.c", "(b.c)+"}
	got, err := rtcshare.EvaluateBatch(g, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(queries) {
		t.Fatalf("results = %d, want %d", len(got), len(queries))
	}
	for i, q := range queries {
		want, err := rtcshare.Evaluate(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if !got[i].Equal(want) {
			t.Errorf("query %d (%s): batch %d pairs, serial %d pairs", i, q, got[i].Len(), want.Len())
		}
	}
}

func TestPublicSharedCacheAcrossEngines(t *testing.T) {
	g := fig1(t)
	cache := rtcshare.NewSharedCache()
	a := rtcshare.NewEngineWithCache(g, rtcshare.Options{}, cache)
	b := rtcshare.NewEngineWithCache(g, rtcshare.Options{}, cache)

	if _, err := a.EvaluateQuery("d.(b.c)+.c"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.EvaluateQuery("a.(b.c)+.b"); err != nil {
		t.Fatal(err)
	}
	// Engine b must have reused a's RTC for (b.c).
	if st := b.Stats(); st.CacheHits != 1 || st.CacheMisses != 0 {
		t.Errorf("engine b stats = %+v, want the shared RTC reused (1 hit, 0 misses)", st)
	}
	var c rtcshare.CacheCounters = cache.Counters()
	if c.Misses == 0 {
		t.Errorf("cache counters = %+v, want at least one computation recorded", c)
	}

	// A fork of a shares the same cache.
	f := a.Fork()
	if _, err := f.EvaluateQuery("(b.c)+"); err != nil {
		t.Fatal(err)
	}
	if st := f.Stats(); st.CacheHits != 1 {
		t.Errorf("forked engine stats = %+v, want 1 hit", st)
	}
}

func TestPublicApplyUpdates(t *testing.T) {
	g := fig1(t)
	engine := rtcshare.NewEngine(g, rtcshare.Options{})
	before, err := engine.EvaluateQuery("d.(b.c)+.c")
	if err != nil {
		t.Fatal(err)
	}

	res, err := engine.ApplyUpdates([]rtcshare.GraphUpdate{
		rtcshare.InsertEdge(0, "d", 4),
		rtcshare.DeleteEdge(7, "d", 4),
		rtcshare.InsertEdge(3, "g", 7), // brand-new label
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Deleted != 1 || res.Epoch == 0 {
		t.Fatalf("update result = %+v", res)
	}
	if engine.Epoch() != res.Epoch {
		t.Fatalf("engine epoch %d, result epoch %d", engine.Epoch(), res.Epoch)
	}

	after, err := engine.EvaluateQuery("d.(b.c)+.c")
	if err != nil {
		t.Fatal(err)
	}
	// The d-anchored paths moved from source 7 to source 0.
	if after.Len() != before.Len() {
		t.Fatalf("result size changed: %d → %d", before.Len(), after.Len())
	}
	if !after.Contains(0, 5) || after.Contains(7, 5) {
		t.Fatalf("updated results wrong: %v", after)
	}
	if res, err := engine.EvaluateQuery("b.g"); err != nil || res.Len() != 1 {
		t.Fatalf("new-label query = %v, %v", res, err)
	}
}

func TestPublicMutableGraph(t *testing.T) {
	m := rtcshare.NewMutableGraph(4)
	if _, err := m.InsertEdge(0, "follows", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.InsertEdge(1, "follows", 2); err != nil {
		t.Fatal(err)
	}
	if removed, err := m.DeleteEdge(0, "follows", 1); err != nil || !removed {
		t.Fatalf("delete: %v %v", removed, err)
	}
	g := m.Freeze()
	if g.NumEdges() != 1 {
		t.Fatalf("frozen edges = %d, want 1", g.NumEdges())
	}
	m2 := rtcshare.MutableFromGraph(g)
	if m2.NumEdges() != 1 {
		t.Fatalf("round-trip edges = %d, want 1", m2.NumEdges())
	}
}

// TestPublicServe boots the HTTP service through the public surface
// (NewEngine + ServeListener), issues a coalesced query and an update,
// and shuts down cleanly.
func TestPublicServe(t *testing.T) {
	g := fig1(t)
	engine := rtcshare.NewEngine(g, rtcshare.Options{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- rtcshare.ServeListener(ctx, l, engine, rtcshare.ServerOptions{Window: time.Millisecond})
	}()

	resp, err := http.Post(base+"/query", "application/json",
		strings.NewReader(`{"query":"d·(b·c)+·c"}`))
	if err != nil {
		t.Fatal(err)
	}
	var qr struct {
		Total int      `json:"total"`
		Epoch uint64   `json:"epoch"`
		Pairs [][2]int `json:"pairs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || qr.Total != 2 {
		t.Fatalf("query: status %d, total %d (want 2)", resp.StatusCode, qr.Total)
	}

	resp, err = http.Post(base+"/update", "application/json",
		strings.NewReader(`{"updates":[{"op":"insert","src":6,"label":"b","dst":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var ur struct {
		Epoch    uint64 `json:"epoch"`
		Inserted int    `json:"inserted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ur.Inserted != 1 || ur.Epoch != qr.Epoch+1 {
		t.Fatalf("update: %+v (query epoch %d)", ur, qr.Epoch)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("ServeListener: %v", err)
	}
}
