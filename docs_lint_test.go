package rtcshare_test

// The documentation gates of the repository, run by CI as a named step:
// every Go package must carry a package-level doc comment, every
// exported identifier of the public surface (the root rtcshare package
// and internal/server) must be documented, and the local links of the
// front-door markdown files must resolve. A missing comment or a broken
// link fails the build, so the godoc pass cannot silently regress.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goPackageDirs returns every directory under the repo root holding
// non-test Go files.
func goPackageDirs(t *testing.T) []string {
	t.Helper()
	dirSet := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirSet[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking repo: %v", err)
	}
	var dirs []string
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	return dirs
}

// TestDocPackageComments enforces that every package has a
// package-level doc comment on at least one of its files.
func TestDocPackageComments(t *testing.T) {
	for _, dir := range goPackageDirs(t) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		checked := 0
		fset := token.NewFileSet()
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			checked++
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("parsing %s: %v", filepath.Join(dir, e.Name()), err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if checked > 0 && !documented {
			t.Errorf("package in %s has no package-level doc comment", dir)
		}
	}
}

// TestDocExportedIdentifiers enforces doc comments on every exported
// top-level identifier (types, funcs, methods, consts, vars) of the
// public surface: the root rtcshare package and internal/server.
func TestDocExportedIdentifiers(t *testing.T) {
	for _, dir := range []string{".", "internal/server"} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing %s: %v", path, err)
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && exportedRecv(d) && d.Doc == nil {
						t.Errorf("%s: exported %s %s has no doc comment", path, declKind(d), d.Name.Name)
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
								t.Errorf("%s: exported type %s has no doc comment", path, sp.Name.Name)
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								// Inside a parenthesised const/var block each
								// exported name needs its own comment (or a
								// block comment on a single-spec decl).
								if name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
									t.Errorf("%s: exported %s %s has no doc comment", path, d.Tok, name.Name)
								}
							}
						}
					}
				}
			}
		}
	}
}

// exportedRecv reports whether a func decl is a plain function or a
// method on an exported type (methods on unexported types are not part
// of the public surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if idx, ok := typ.(*ast.IndexExpr); ok { // generic receiver
		typ = idx.X
	}
	ident, ok := typ.(*ast.Ident)
	return !ok || ident.IsExported()
}

func declKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// mdLink matches [text](target) markdown links.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocMarkdownLinks checks that every local (non-http) link target
// in the front-door documents exists in the repository.
func TestDocMarkdownLinks(t *testing.T) {
	for _, doc := range []string{"README.md", "DESIGN.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s missing: %v", doc, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue // same-file anchor
			}
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, target)
			}
		}
	}
}
