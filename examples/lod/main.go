// Linked-open-data extraction — one of the paper's motivating
// applications (Section I), in the style of SPARQL 1.1 property paths
// over an RDF-ish knowledge graph.
//
// The graph models a tiny ontology: instances connect to classes with
// rdf:type, classes form a hierarchy with rdfs:subClassOf, and instances
// carry domain links (locatedIn, partOf). Classic property-path queries:
//
//	typed        rdf:type.rdfs:subClassOf*      instances of a class or any subclass
//	contained    locatedIn+                     transitive containment
//	cross        rdf:type.rdfs:subClassOf*.sameAs?   with an optional equivalence hop
//
// Run with: go run ./examples/lod
package main

import (
	"fmt"

	"rtcshare"
)

func main() {
	// Vertex layout:
	//   0..5   classes: Thing, Place, City, Capital, Organization, Museum
	//   6..13  instances: berlin, paris, louvre, pergamon, germany, france,
	//          unesco, eu
	const (
		thing, place, city, capital, org, museum = 0, 1, 2, 3, 4, 5
		berlin, paris, louvre, pergamon          = 6, 7, 8, 9
		germany, france, unesco, eu              = 10, 11, 12, 13
		n                                        = 14
	)
	names := map[rtcshare.VID]string{
		thing: "Thing", place: "Place", city: "City", capital: "Capital",
		org: "Organization", museum: "Museum", berlin: "berlin",
		paris: "paris", louvre: "Louvre", pergamon: "Pergamon",
		germany: "germany", france: "france", unesco: "UNESCO", eu: "EU",
	}

	b := rtcshare.NewGraphBuilder(n)
	// Class hierarchy.
	b.MustAddEdge(place, "rdfs:subClassOf", thing)
	b.MustAddEdge(city, "rdfs:subClassOf", place)
	b.MustAddEdge(capital, "rdfs:subClassOf", city)
	b.MustAddEdge(org, "rdfs:subClassOf", thing)
	b.MustAddEdge(museum, "rdfs:subClassOf", org)
	b.MustAddEdge(museum, "rdfs:subClassOf", place)
	// Instance typing.
	b.MustAddEdge(berlin, "rdf:type", capital)
	b.MustAddEdge(paris, "rdf:type", capital)
	b.MustAddEdge(louvre, "rdf:type", museum)
	b.MustAddEdge(pergamon, "rdf:type", museum)
	b.MustAddEdge(unesco, "rdf:type", org)
	b.MustAddEdge(eu, "rdf:type", org)
	// Domain links.
	b.MustAddEdge(louvre, "locatedIn", paris)
	b.MustAddEdge(pergamon, "locatedIn", berlin)
	b.MustAddEdge(paris, "locatedIn", france)
	b.MustAddEdge(berlin, "locatedIn", germany)
	b.MustAddEdge(france, "partOf", eu)
	b.MustAddEdge(germany, "partOf", eu)
	g := b.Build()

	engine := rtcshare.NewEngine(g, rtcshare.Options{})
	show := func(title, query string, filterDst rtcshare.VID) {
		res, err := engine.EvaluateQuery(query)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s — %s\n", title, query)
		for _, p := range res.Sorted() {
			if filterDst >= 0 && p.Dst != filterDst {
				continue
			}
			fmt.Printf("  %s → %s\n", names[p.Src], names[p.Dst])
		}
		fmt.Println()
	}

	// Everything that is (transitively) a Place: the SPARQL idiom
	// ?x rdf:type/rdfs:subClassOf* :Place.
	show("instances of Place (incl. subclasses)", "rdf:type.rdfs:subClassOf*", place)

	// Transitive containment: -1 prints every pair.
	show("transitive location of museums", "locatedIn+", -1)

	// Which museums sit (transitively) inside the EU?
	res, err := engine.EvaluateQuery("locatedIn+.partOf")
	if err != nil {
		panic(err)
	}
	fmt.Println("museums inside the EU — locatedIn+.partOf")
	for _, p := range res.Sorted() {
		if p.Dst == eu && (p.Src == louvre || p.Src == pergamon) {
			fmt.Printf("  %s → %s\n", names[p.Src], names[p.Dst])
		}
	}
}
