// Multi-query sharing — the paper's core scenario (Section V): a batch
// of RPQs that all contain the same Kleene closure as a common sub-query.
//
// The program draws an RMAT graph at the paper's RMAT_3 shape
// (degree per label = 2), generates a 10-query batch-unit workload
// Pre·R+·Post sharing one R, and runs it under all three strategies,
// printing the response-time split and the shared-data sizes — a
// one-dataset miniature of the paper's Figs. 10–12.
//
// Run with: go run ./examples/multiquery
package main

import (
	"fmt"
	"time"

	"rtcshare"
)

func main() {
	// RMAT_3 at 2^10 vertices: |E| = 2^13, |Σ| = 4, degree 2.
	g, err := rtcshare.GenerateRMAT(rtcshare.RMATConfig{
		Vertices: 1 << 10,
		Edges:    1 << 13,
		Labels:   4,
		Seed:     2022,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("graph: %s\n\n", g.Stats())

	// Ten batch units sharing R = l1.l2: Pre·(l1.l2)+·Post.
	pres := []string{"l0", "l1", "l2", "l3", "l0", "l1", "l2", "l3", "l0", "l1"}
	posts := []string{"l3", "l2", "l1", "l0", "l1", "l0", "l3", "l2", "l2", "l3"}
	var queries []string
	for i := range pres {
		queries = append(queries, pres[i]+".(l1.l2)+."+posts[i])
	}

	fmt.Printf("%-8s %12s %14s %14s %14s %12s\n",
		"method", "total", "shared_data", "pre⋈R+", "remainder", "shared pairs")
	for _, strategy := range []rtcshare.Strategy{rtcshare.NoSharing, rtcshare.FullSharing, rtcshare.RTCSharing} {
		engine := rtcshare.NewEngine(g, rtcshare.Options{Strategy: strategy})
		var resultPairs int
		start := time.Now()
		for _, q := range queries {
			res, err := engine.EvaluateQuery(q)
			if err != nil {
				panic(err)
			}
			resultPairs += res.Len()
		}
		wall := time.Since(start)
		st := engine.Stats()
		fmt.Printf("%-8s %12s %14s %14s %14s %12d   (%d result pairs)\n",
			strategy, wall.Round(time.Microsecond),
			st.SharedData.Round(time.Microsecond),
			st.PreJoin.Round(time.Microsecond),
			st.Remainder.Round(time.Microsecond),
			engine.SharedPairsTotal(), resultPairs)
	}

	// The same batch fanned over worker goroutines sharing one cache:
	// the closure sub-query is still computed exactly once (the cache's
	// singleflight deduplicates concurrent misses), and on multi-core
	// hardware the wall-clock drops accordingly.
	fmt.Println("\nparallel batch (RTCSharing, shared cache):")
	for _, workers := range []int{1, 2, 4} {
		engine := rtcshare.NewEngine(g, rtcshare.Options{})
		start := time.Now()
		results, err := engine.EvaluateQueriesParallel(queries, workers)
		if err != nil {
			panic(err)
		}
		wall := time.Since(start)
		var resultPairs int
		for _, r := range results {
			resultPairs += r.Len()
		}
		st := engine.Stats()
		fmt.Printf("  workers=%d  wall=%10s  computes=%d  hits=%d  (%d result pairs)\n",
			workers, wall.Round(time.Microsecond), st.CacheMisses, st.CacheHits, resultPairs)
	}

	// What the sharing buys: the reduced structure vs the full closure.
	fmt.Println("\nshared structure detail (RTCSharing):")
	engine := rtcshare.NewEngine(g, rtcshare.Options{})
	for _, q := range queries {
		if _, err := engine.EvaluateQuery(q); err != nil {
			panic(err)
		}
	}
	for _, s := range engine.SharedSummaries() {
		fmt.Printf("  R=%-8s |V_R|=%4d  |V̄_R̄|=%4d  |TC(Ḡ_R)|=%6d pairs  avg SCC=%.2f\n",
			s.R, s.EdgeReducedVertices, s.ReducedVertices, s.SharedPairs, s.AvgSCCSize)
	}
	st := engine.Stats()
	fmt.Printf("  RTC cache: %d misses, %d hits across %d queries\n",
		st.CacheMisses, st.CacheHits, st.Queries)
}
