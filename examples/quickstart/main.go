// Quickstart: the paper's running example, end to end.
//
// Builds the Fig. 1 graph, evaluates the query d·(b·c)+·c from Example 1,
// and walks through the two-level graph reduction of Section III —
// printing the intermediate artifacts the paper's Examples 3–6 show.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"rtcshare"
)

func main() {
	// The edge-labeled directed multigraph of Fig. 1 (vertices v0..v9,
	// labels a..f).
	b := rtcshare.NewGraphBuilder(10)
	edges := []struct {
		src   rtcshare.VID
		label string
		dst   rtcshare.VID
	}{
		{7, "d", 4}, {4, "b", 1}, {1, "c", 2}, {2, "c", 5}, {2, "b", 5},
		{2, "b", 3}, {3, "b", 2}, {5, "b", 6}, {5, "c", 6}, {5, "c", 4},
		{6, "c", 3}, {0, "a", 1}, {7, "a", 8}, {8, "e", 9}, {9, "f", 8},
	}
	for _, e := range edges {
		b.MustAddEdge(e.src, e.label, e.dst)
	}
	g := b.Build()
	fmt.Printf("graph: %s\n\n", g.Stats())

	engine := rtcshare.NewEngine(g, rtcshare.Options{})

	// Example 1: (d·(b·c)+·c)_G = {(v7,v5), (v7,v3)}.
	query := "d·(b·c)+·c"
	res, err := engine.EvaluateQuery(query)
	if err != nil {
		panic(err)
	}
	fmt.Printf("query %s:\n", query)
	for _, p := range res.Sorted() {
		fmt.Printf("  (v%d, v%d)\n", p.Src, p.Dst)
	}

	// The reduction artifacts the engine produced on the way: the RTC of
	// the shared sub-query R = b·c (Examples 3–6).
	fmt.Println("\nshared structures (Section III):")
	for _, s := range engine.SharedSummaries() {
		fmt.Printf("  R = %s\n", s.R)
		fmt.Printf("    edge-level reduction  G → G_R:  |V_R|  = %d\n", s.EdgeReducedVertices)
		fmt.Printf("    vertex-level reduction G_R → Ḡ_R: |V̄_R̄| = %d SCCs (avg %.2f vertices each)\n",
			s.ReducedVertices, s.AvgSCCSize)
		fmt.Printf("    reduced transitive closure |TC(Ḡ_R)| = %d pairs\n", s.SharedPairs)
	}

	// A second query sharing the same Kleene sub-query: the RTC is
	// reused, not recomputed.
	query2 := "a·(b·c)+"
	if _, err := engine.EvaluateQuery(query2); err != nil {
		panic(err)
	}
	st := engine.Stats()
	fmt.Printf("\nafter also evaluating %s: RTC cache hits=%d misses=%d\n",
		query2, st.CacheHits, st.CacheMisses)
	fmt.Printf("timing: shared_data=%v  pre_join=%v  remainder=%v\n",
		st.SharedData, st.PreJoin, st.Remainder)
}
