// Quickstart: the paper's running example, end to end.
//
// Builds the Fig. 1 graph, evaluates the query d·(b·c)+·c from Example 1,
// walks through the two-level graph reduction of Section III — printing
// the intermediate artifacts the paper's Examples 3–6 show — and then
// runs the same graph as a service: an in-process rpqd server fed a
// coalesced multi-client batch, the serving story of DESIGN.md §10.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"rtcshare"
)

func main() {
	// The edge-labeled directed multigraph of Fig. 1 (vertices v0..v9,
	// labels a..f).
	b := rtcshare.NewGraphBuilder(10)
	edges := []struct {
		src   rtcshare.VID
		label string
		dst   rtcshare.VID
	}{
		{7, "d", 4}, {4, "b", 1}, {1, "c", 2}, {2, "c", 5}, {2, "b", 5},
		{2, "b", 3}, {3, "b", 2}, {5, "b", 6}, {5, "c", 6}, {5, "c", 4},
		{6, "c", 3}, {0, "a", 1}, {7, "a", 8}, {8, "e", 9}, {9, "f", 8},
	}
	for _, e := range edges {
		b.MustAddEdge(e.src, e.label, e.dst)
	}
	g := b.Build()
	fmt.Printf("graph: %s\n\n", g.Stats())

	engine := rtcshare.NewEngine(g, rtcshare.Options{})

	// Example 1: (d·(b·c)+·c)_G = {(v7,v5), (v7,v3)}.
	query := "d·(b·c)+·c"
	res, err := engine.EvaluateQuery(query)
	if err != nil {
		panic(err)
	}
	fmt.Printf("query %s:\n", query)
	for _, p := range res.Sorted() {
		fmt.Printf("  (v%d, v%d)\n", p.Src, p.Dst)
	}

	// The reduction artifacts the engine produced on the way: the RTC of
	// the shared sub-query R = b·c (Examples 3–6).
	fmt.Println("\nshared structures (Section III):")
	for _, s := range engine.SharedSummaries() {
		fmt.Printf("  R = %s\n", s.R)
		fmt.Printf("    edge-level reduction  G → G_R:  |V_R|  = %d\n", s.EdgeReducedVertices)
		fmt.Printf("    vertex-level reduction G_R → Ḡ_R: |V̄_R̄| = %d SCCs (avg %.2f vertices each)\n",
			s.ReducedVertices, s.AvgSCCSize)
		fmt.Printf("    reduced transitive closure |TC(Ḡ_R)| = %d pairs\n", s.SharedPairs)
	}

	// A second query sharing the same Kleene sub-query: the RTC is
	// reused, not recomputed.
	query2 := "a·(b·c)+"
	if _, err := engine.EvaluateQuery(query2); err != nil {
		panic(err)
	}
	st := engine.Stats()
	fmt.Printf("\nafter also evaluating %s: RTC cache hits=%d misses=%d\n",
		query2, st.CacheHits, st.CacheMisses)
	fmt.Printf("timing: shared_data=%v  pre_join=%v  remainder=%v\n",
		st.SharedData, st.PreJoin, st.Remainder)

	serveIt(g)
}

// serveIt runs the Fig. 1 graph as a service: rpqd's handler on an
// ephemeral port, a burst of concurrent clients whose requests land in
// one coalescing window, and the /metrics view of what was shared.
func serveIt(g *rtcshare.Graph) {
	fmt.Println("\nrunning it as a service (rpqd in-process):")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// The same server `rpqd -demo` runs; a fixed 5ms window so the
		// whole burst below lands in one batch. The fast lane is off
		// because every Fig. 1 query is planner-cheap — with the default
		// options all four would bypass the window, which is the right
		// production behavior but the wrong demo of coalescing.
		done <- rtcshare.ServeListener(ctx, l, rtcshare.NewEngine(g, rtcshare.Options{}),
			rtcshare.ServerOptions{Window: 5 * time.Millisecond, DisableFastLane: true})
	}()

	// Four "users" fire concurrently: two ask the Example 1 query, two
	// ask other queries over the same closure (b·c)+. The coalescer
	// dedups the repeats and evaluates the window as ONE engine batch,
	// so all four share the RTC of R = b·c and one graph epoch.
	queries := []string{"d·(b·c)+·c", "d·(b·c)+·c", "a·(b·c)+", "(b·c)+"}
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"query": q, "limit": 3})
			resp, err := http.Post(base+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				panic(err)
			}
			defer resp.Body.Close()
			var qr struct {
				Epoch uint64     `json:"epoch"`
				Total int        `json:"total"`
				Pairs [][2]int32 `json:"pairs"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				panic(err)
			}
			fmt.Printf("  client %d: %-12s epoch=%d total=%d first pairs=%v\n",
				i, q, qr.Epoch, qr.Total, qr.Pairs)
		}(i, q)
	}
	wg.Wait()

	// What the window did, from the service's own metrics endpoint.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		panic(err)
	}
	var m struct {
		Coalescer struct {
			Submitted    int64 `json:"submitted"`
			Batches      int64 `json:"batches"`
			DedupHits    int64 `json:"dedup_hits"`
			FastPathHits int64 `json:"fast_path_hits"`
		} `json:"coalescer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		panic(err)
	}
	resp.Body.Close()
	fmt.Printf("  coalescing: %d requests -> %d batch(es), %d dedup hit(s), %d fast-path hit(s)\n",
		m.Coalescer.Submitted, m.Coalescer.Batches, m.Coalescer.DedupHits, m.Coalescer.FastPathHits)

	cancel()
	if err := <-done; err != nil {
		panic(err)
	}
	fmt.Println("  graceful shutdown: done")
}
