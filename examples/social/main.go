// Social-network friend recommendation — one of the paper's motivating
// applications (Section I).
//
// A synthetic follower graph carries "follows", "mentions" and "blocks"
// edges. Three product teams run overlapping RPQ dashboards against it:
//
//	reach      follows.follows+            who is in my extended reach?
//	influencer mentions.follows+           whose mentions reach far?
//	recommend  follows.follows+.mentions   friends-of-friends worth suggesting
//
// All three share the Kleene sub-query follows+, so one reduced
// transitive closure serves the whole dashboard. The program compares
// RTCSharing with evaluating each query independently.
//
// Run with: go run ./examples/social
package main

import (
	"fmt"
	"time"

	"rtcshare"
)

func main() {
	// A scale-free follower graph: 2048 users, 16k edges over 3 labels.
	g, err := rtcshare.GenerateRMAT(rtcshare.RMATConfig{
		Vertices: 2048,
		Edges:    16384,
		Labels:   3,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	// RMAT names labels l0, l1, l2; give them social meanings by mapping
	// the dashboard queries onto them.
	const (
		follows  = "l0"
		mentions = "l1"
		blocks   = "l2"
	)
	fmt.Printf("social graph: %s\n\n", g.Stats())

	dashboard := []struct{ name, query string }{
		{"reach", follows + "." + follows + "+"},
		{"influencer", mentions + "." + follows + "+"},
		{"recommend", follows + "." + follows + "+." + mentions},
		{"safe-reach", follows + "." + follows + "+." + blocks + "?"},
	}

	for _, strategy := range []rtcshare.Strategy{rtcshare.NoSharing, rtcshare.RTCSharing} {
		engine := rtcshare.NewEngine(g, rtcshare.Options{Strategy: strategy})
		start := time.Now()
		for _, q := range dashboard {
			res, err := engine.EvaluateQuery(q.query)
			if err != nil {
				panic(err)
			}
			fmt.Printf("[%s] %-10s %-28s %8d pairs\n", strategy, q.name, q.query, res.Len())
		}
		st := engine.Stats()
		fmt.Printf("[%s] wall=%v engine split: shared=%v join=%v remainder=%v hits=%d\n\n",
			strategy, time.Since(start).Round(time.Microsecond),
			st.SharedData.Round(time.Microsecond), st.PreJoin.Round(time.Microsecond),
			st.Remainder.Round(time.Microsecond), st.CacheHits)
	}

	// Top recommendation for one user: the pairs starting at vertex 42.
	engine := rtcshare.NewEngine(g, rtcshare.Options{})
	res, err := engine.EvaluateQuery(follows + "." + follows + "+." + mentions)
	if err != nil {
		panic(err)
	}
	count := 0
	fmt.Println("sample recommendations for user 42:")
	res.Each(func(src, dst rtcshare.VID) bool {
		if src == 42 && dst != 42 {
			fmt.Printf("  suggest user %d\n", dst)
			count++
		}
		return count < 5
	})
	if count == 0 {
		fmt.Println("  (user 42 has no extended network in this draw)")
	}
}
