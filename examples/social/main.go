// Social-network friend recommendation — one of the paper's motivating
// applications (Section I), extended with live ingest.
//
// A synthetic follower graph carries "follows", "mentions" and "blocks"
// edges. Three product teams run overlapping RPQ dashboards against it:
//
//	reach      follows.follows+            who is in my extended reach?
//	influencer mentions.follows+           whose mentions reach far?
//	recommend  follows.follows+.mentions   friends-of-friends worth suggesting
//
// All three share the Kleene sub-query follows+, so one reduced
// transitive closure serves the whole dashboard. The program first
// compares RTCSharing with evaluating each query independently — then
// keeps the dashboard alive while new edges stream in through
// Engine.ApplyUpdates: each update batch bumps the engine onto a new
// graph epoch, incrementally patching the follows+ structure (inserts
// on "follows") and carrying everything the batch didn't touch, instead
// of recomputing the world.
//
// Run with: go run ./examples/social
package main

import (
	"fmt"
	"math/rand"
	"time"

	"rtcshare"
)

func main() {
	// A scale-free follower graph: 2048 users, 16k edges over 3 labels.
	g, err := rtcshare.GenerateRMAT(rtcshare.RMATConfig{
		Vertices: 2048,
		Edges:    16384,
		Labels:   3,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	// RMAT names labels l0, l1, l2; give them social meanings by mapping
	// the dashboard queries onto them.
	const (
		follows  = "l0"
		mentions = "l1"
		blocks   = "l2"
	)
	fmt.Printf("social graph: %s\n\n", g.Stats())

	dashboard := []struct{ name, query string }{
		{"reach", follows + "." + follows + "+"},
		{"influencer", mentions + "." + follows + "+"},
		{"recommend", follows + "." + follows + "+." + mentions},
		{"safe-reach", follows + "." + follows + "+." + blocks + "?"},
	}

	runDashboard := func(engine *rtcshare.Engine) {
		for _, q := range dashboard {
			res, err := engine.EvaluateQuery(q.query)
			if err != nil {
				panic(err)
			}
			fmt.Printf("  %-10s %-28s %8d pairs\n", q.name, q.query, res.Len())
		}
	}

	for _, strategy := range []rtcshare.Strategy{rtcshare.NoSharing, rtcshare.RTCSharing} {
		engine := rtcshare.NewEngine(g, rtcshare.Options{Strategy: strategy})
		start := time.Now()
		fmt.Printf("[%s]\n", strategy)
		runDashboard(engine)
		st := engine.Stats()
		fmt.Printf("  wall=%v engine split: shared=%v join=%v remainder=%v hits=%d\n\n",
			time.Since(start).Round(time.Microsecond),
			st.SharedData.Round(time.Microsecond), st.PreJoin.Round(time.Microsecond),
			st.Remainder.Round(time.Microsecond), st.CacheHits)
	}

	// Live ingest: the dashboard engine stays up while follower edges
	// stream in. Every batch lands through ApplyUpdates — the follows+
	// RTC is patched in place (never recomputed), the mentions-only
	// structures are carried across the epoch untouched, and queries
	// running concurrently would keep answering against the epoch they
	// started on.
	engine := rtcshare.NewEngine(g, rtcshare.Options{})
	runDashboard(engine)
	rng := rand.New(rand.NewSource(99))
	fmt.Println("\nstreaming new follows/mentions edges:")
	for batch := 0; batch < 3; batch++ {
		var updates []rtcshare.GraphUpdate
		for i := 0; i < 64; i++ {
			src := rtcshare.VID(rng.Intn(2048))
			dst := rtcshare.VID(rng.Intn(2048))
			updates = append(updates, rtcshare.InsertEdge(src, follows, dst))
		}
		// The occasional retraction exercises the fallback: deletes drop
		// the affected structures for recompute on demand.
		if batch == 2 {
			updates = append(updates, rtcshare.DeleteEdge(updates[0].Src, follows, updates[0].Dst))
		}
		start := time.Now()
		res, err := engine.ApplyUpdates(updates)
		if err != nil {
			panic(err)
		}
		fmt.Printf("\nepoch %d: +%d/-%d edges in %v (structures: %d patched, %d carried, %d dropped; relations: %d carried)\n",
			res.Epoch, res.Inserted, res.Deleted, time.Since(start).Round(time.Microsecond),
			res.Patched, res.Carried, res.Dropped, res.RelCarried)
		runDashboard(engine)
	}

	// Top recommendation for one user: the pairs starting at vertex 42.
	res, err := engine.EvaluateQuery(follows + "." + follows + "+." + mentions)
	if err != nil {
		panic(err)
	}
	count := 0
	fmt.Println("\nsample recommendations for user 42:")
	res.Each(func(src, dst rtcshare.VID) bool {
		if src == 42 && dst != 42 {
			fmt.Printf("  suggest user %d\n", dst)
			count++
		}
		return count < 5
	})
	if count == 0 {
		fmt.Println("  (user 42 has no extended network in this draw)")
	}
}
