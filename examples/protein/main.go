// Protein signal-path detection — one of the paper's motivating
// applications (Section I).
//
// A protein-interaction network carries typed edges: "activates",
// "inhibits", "binds" and "phosphorylates". Signal-path questions are
// RPQs:
//
//	cascade     activates+                     transitive activation
//	switch-off  activates+.inhibits           an activation cascade that ends suppressed
//	relay       binds.(phosphorylates.activates)+  kinase relay chains
//
// The example builds a small curated pathway plus synthetic noise,
// evaluates the queries, and shows how the strongly-connected feedback
// loops in the pathway collapse under vertex-level reduction.
//
// Run with: go run ./examples/protein
package main

import (
	"fmt"
	"math/rand"

	"rtcshare"
)

const (
	numProteins = 600
	activates   = "activates"
	inhibits    = "inhibits"
	binds       = "binds"
	phos        = "phosphorylates"
)

func main() {
	b := rtcshare.NewGraphBuilder(numProteins)

	// A curated core pathway with feedback loops (0..9): receptors 0-2,
	// kinase cascade 3-6 with a 4↔5 feedback pair, effectors 7-9.
	core := []struct {
		src   rtcshare.VID
		label string
		dst   rtcshare.VID
	}{
		{0, binds, 3}, {1, binds, 3}, {2, binds, 4},
		{3, phos, 4}, {4, activates, 5}, {5, activates, 4}, // feedback loop
		{4, phos, 5}, {5, phos, 6}, {6, activates, 7},
		{4, activates, 6}, {6, activates, 5}, // second loop 5→6→5
		{7, inhibits, 8}, {6, inhibits, 9}, {3, activates, 4},
	}
	for _, e := range core {
		b.MustAddEdge(e.src, e.label, e.dst)
	}

	// Synthetic periphery: random interactions among the remaining
	// proteins, biased toward activation (as in curated databases).
	rng := rand.New(rand.NewSource(13))
	labels := []string{activates, activates, activates, inhibits, binds, phos}
	for i := 0; i < 4*numProteins; i++ {
		src := rtcshare.VID(rng.Intn(numProteins))
		dst := rtcshare.VID(rng.Intn(numProteins))
		b.MustAddEdge(src, labels[rng.Intn(len(labels))], dst)
	}
	g := b.Build()
	fmt.Printf("protein network: %s\n\n", g.Stats())

	engine := rtcshare.NewEngine(g, rtcshare.Options{})
	queries := []struct{ name, query string }{
		{"cascade", "activates+"},
		{"switch-off", "activates+.inhibits"},
		{"relay", "binds.(phosphorylates.activates)+"},
		{"indirect", "binds.activates+.inhibits"},
	}
	for _, q := range queries {
		res, err := engine.EvaluateQuery(q.query)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s %-38s %7d pairs\n", q.name, q.query, res.Len())
	}

	// The cascade feedback loops collapse under vertex-level reduction:
	// compare |V_R| with |V̄_R̄| for the shared sub-queries.
	fmt.Println("\ngraph reduction at work (Section III):")
	for _, s := range engine.SharedSummaries() {
		fmt.Printf("  R=%-28s |V_R|=%4d → |V̄_R̄|=%4d (avg SCC %.2f), |TC(Ḡ_R)|=%d\n",
			s.R, s.EdgeReducedVertices, s.ReducedVertices, s.AvgSCCSize, s.SharedPairs)
	}

	// Is the curated receptor 0 able to suppress effector 9 indirectly?
	res, err := engine.EvaluateQuery("binds.activates+.inhibits")
	if err != nil {
		panic(err)
	}
	if res.Contains(0, 9) {
		fmt.Println("\nreceptor p0 can indirectly suppress effector p9 — pathway confirmed")
	} else {
		fmt.Println("\nno indirect suppression path from p0 to p9")
	}
}
