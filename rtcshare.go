// Package rtcshare evaluates regular path queries (RPQs) over
// edge-labeled directed multigraphs, sharing a reduced transitive closure
// (RTC) across queries.
//
// It is a from-scratch Go implementation of
//
//	Na, Moon, Yi, Whang, Hyun:
//	"Regular Path Query Evaluation Sharing a Reduced Transitive Closure
//	 Based on Graph Reduction", ICDE 2022 (arXiv:2111.06918).
//
// An RPQ such as "follows.(mentions.follows)+.likes" returns the ordered
// vertex pairs connected by a path whose edge-label sequence matches the
// expression. Kleene closures make RPQs expensive; when several queries
// share a closure sub-query R+, this library evaluates R once, reduces
// the resulting graph at the edge level (paths → edges) and the vertex
// level (strongly connected components → vertices), computes the
// transitive closure of the small reduced graph, and shares that reduced
// transitive closure across all queries (the paper's RTCSharing
// algorithm). The FullSharing and NoSharing baselines from the paper's
// evaluation are included for comparison.
//
// # Quick start
//
//	b := rtcshare.NewGraphBuilder(4)
//	b.MustAddEdge(0, "follows", 1)
//	b.MustAddEdge(1, "follows", 2)
//	b.MustAddEdge(2, "follows", 0)
//	b.MustAddEdge(2, "likes", 3)
//	g := b.Build()
//
//	engine := rtcshare.NewEngine(g, rtcshare.Options{})
//	res, err := engine.EvaluateQuery("follows+.likes")
//
// See the examples/ directory for complete programs and DESIGN.md for the
// mapping between the paper and the packages under internal/.
package rtcshare

import (
	"context"
	"io"
	"net"
	"net/http"
	"time"

	"rtcshare/internal/core"
	"rtcshare/internal/datagen"
	"rtcshare/internal/eval"
	"rtcshare/internal/graph"
	"rtcshare/internal/pairs"
	"rtcshare/internal/rpq"
	"rtcshare/internal/rtc"
	"rtcshare/internal/server"
	"rtcshare/internal/shard"
	"rtcshare/internal/store"
)

// VID identifies a vertex: dense integers in [0, NumVertices).
type VID = graph.VID

// Graph is an immutable edge-labeled directed multigraph (the data model
// of the paper, Section II-A). Build one with NewGraphBuilder or load one
// with ReadGraph.
type Graph = graph.Graph

// GraphBuilder accumulates labeled edges and freezes them into a Graph.
type GraphBuilder = graph.Builder

// MutableGraph is a mutable labeled multigraph supporting interleaved
// InsertEdge/DeleteEdge with incrementally maintained per-label
// statistics, freezable into an immutable Graph any number of times —
// the ingestion side of the dynamic-graph subsystem. (Engines take
// updates directly through Engine.ApplyUpdates; a MutableGraph is for
// building and evolving graphs outside an engine.)
type MutableGraph = graph.Mutable

// GraphStats summarises a graph (|V|, |E|, |Σ|, degree per label).
type GraphStats = graph.Stats

// NewGraphBuilder returns a builder for a graph with the given number of
// vertices.
func NewGraphBuilder(numVertices int) *GraphBuilder {
	return graph.NewBuilder(numVertices)
}

// NewMutableGraph returns an empty mutable graph over the dense vertex
// space [0, numVertices).
func NewMutableGraph(numVertices int) *MutableGraph {
	return graph.NewMutable(numVertices)
}

// MutableFromGraph copies a frozen Graph into a MutableGraph so it can
// start taking updates.
func MutableFromGraph(g *Graph) *MutableGraph { return graph.MutableFromGraph(g) }

// ReadGraph parses the text edge-list format ("src label dst" lines with
// an optional "%vertices N" directive).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph serialises a graph in the text edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// Expr is a parsed regular path query.
type Expr = rpq.Expr

// ParseQuery parses the RPQ concrete syntax: labels, '.' (or '·' or '/')
// for concatenation, '|' for alternation, '+', '*', '?' postfix, 'ε',
// parentheses, and '^label' for inverse paths (traverse an edge
// backwards, as in SPARQL 1.1 property paths).
func ParseQuery(q string) (Expr, error) { return rpq.Parse(q) }

// MustParseQuery is ParseQuery but panics on error; for static queries.
func MustParseQuery(q string) Expr { return rpq.MustParse(q) }

// Pair is an ordered (start vertex, end vertex) result pair.
type Pair = pairs.Pair

// Result is the evaluation result of an RPQ: a set of ordered vertex
// pairs (Definition 2 of the paper).
type Result = pairs.Set

// Relation is an immutable, columnar evaluation result: pairs grouped
// by start vertex in sorted CSR runs, with a lazily built end-vertex
// transpose. Engine.EvaluateRel returns results in this form without
// materialising a hash set — the cheapest way to consume large results
// (iterate with Each/EachSrc, probe with Contains).
type Relation = pairs.Relation

// Strategy selects the multi-query evaluation method.
type Strategy = core.Strategy

const (
	// RTCSharing shares the reduced transitive closure (the paper's
	// contribution, Algorithms 1 and 2). This is the default.
	RTCSharing = core.RTCSharing
	// FullSharing shares the full closure R+_G (Abul-Basher, ICDE 2017).
	FullSharing = core.FullSharing
	// NoSharing evaluates each query independently by automaton-product
	// traversal (Yakovets et al., SIGMOD 2016).
	NoSharing = core.NoSharing
)

// TCAlgorithm selects the transitive-closure algorithm for the reduced
// graph.
type TCAlgorithm = rtc.TCAlgorithm

const (
	// BFSClosure is a per-vertex BFS (the paper's Table III default).
	BFSClosure = rtc.BFSClosure
	// PurdomClosure is Purdom's SCC-based algorithm (BIT 1970).
	PurdomClosure = rtc.PurdomClosure
	// NuutilaClosure is Nuutila's interleaved algorithm (IPL 1994).
	NuutilaClosure = rtc.NuutilaClosure
	// BitsetClosure is a density-selected hybrid: a word-parallel bitset
	// DP over the condensation in reverse topological order for dense
	// reduced graphs, a worker-parallel per-source frontier BFS for
	// sparse ones. Typically the fastest choice on closure-heavy
	// workloads (see BENCH_layout.json).
	BitsetClosure = rtc.BitsetClosure
)

// Layout selects the engine executor's relation representation
// (Options.Layout).
type Layout = core.Layout

const (
	// LayoutColumnar is the default: sub-query results are sealed into
	// immutable columnar relations (CSR runs, lazily transposed) that
	// batch units probe directly and engines share without copying.
	LayoutColumnar = core.LayoutColumnar
	// LayoutMapSet is the seed's map-based executor, kept as the
	// baseline of the rpqbench layout experiment.
	LayoutMapSet = core.LayoutMapSet
)

// Options configure an Engine. The zero value selects RTCSharing with
// the heuristic planner, a BFS closure, no DFA determinisation and the
// default DNF bound.
type Options = core.Options

// PlannerMode selects how the engine plans DNF clauses before executing
// them (Options.Planner).
type PlannerMode = core.PlannerMode

const (
	// PlannerHeuristic is the paper's fixed pipeline: split each clause
	// at its rightmost outermost Kleene closure and join forward. This
	// is the default.
	PlannerHeuristic = core.PlannerHeuristic
	// PlannerCostBased enumerates every closure anchor in both join
	// directions plus a direct-automaton bypass, prices the candidates
	// with cardinality estimates from the graph's per-label statistics,
	// and picks the cheapest. Results are identical to PlannerHeuristic;
	// only the execution strategy changes.
	PlannerCostBased = core.PlannerCostBased
)

// Stats is the engine's accumulated timing split: SharedData (computing
// the shared closure structure), PreJoin (the Pre_G ⋈ R+_G join) and
// Remainder, plus cache counters.
type Stats = core.Stats

// SharedSummary describes one cached shared structure: the sub-query R,
// the shared pair count, and the reduced-graph vertex counts.
type SharedSummary = core.SharedSummary

// Engine evaluates RPQs over one (updatable) graph, sharing closure
// structures across queries. It is safe for concurrent use: the shared
// structures live in a SharedCache (singleflight-deduplicated, so
// concurrent queries needing the same closure sub-query compute it
// once), and the per-engine accounting is lock-protected. Engine.Fork
// creates engines that share the receiver's cache;
// Engine.EvaluateBatchParallel fans a query batch over such forks.
//
// Engine.ApplyUpdates mutates the graph between (or concurrently with)
// query batches: it freezes a new graph version, advances the cache to
// a new epoch — carrying cached structures whose sub-queries mention no
// updated label, incrementally patching single-label closure structures
// under insert-only deltas, and dropping the rest for recompute on
// demand — and atomically swaps the engine onto the new version.
// Running queries finish against the version they started on; a result
// always describes exactly one graph epoch.
type Engine = core.Engine

// GraphUpdate is one edge mutation for Engine.ApplyUpdates; build them
// with InsertEdge/DeleteEdge.
type GraphUpdate = core.GraphUpdate

// UpdateOp is the kind of a GraphUpdate.
type UpdateOp = core.UpdateOp

const (
	// OpInsertEdge adds a labeled edge (no-op if present).
	OpInsertEdge = core.OpInsertEdge
	// OpDeleteEdge removes a labeled edge (no-op if absent).
	OpDeleteEdge = core.OpDeleteEdge
)

// InsertEdge returns an insert update for Engine.ApplyUpdates.
func InsertEdge(src VID, label string, dst VID) GraphUpdate {
	return core.InsertEdge(src, label, dst)
}

// DeleteEdge returns a delete update for Engine.ApplyUpdates.
func DeleteEdge(src VID, label string, dst VID) GraphUpdate {
	return core.DeleteEdge(src, label, dst)
}

// UpdateResult reports what one ApplyUpdates batch did: the new graph
// epoch, the effective edge changes, and the carried/patched/dropped
// fate of every cached structure and relation.
type UpdateResult = core.UpdateResult

// SharedCache holds the shared closure structures (the paper's RTCs and
// full closures) in one region and the sealed columnar sub-query and
// result relations in a second, budget-bounded region. Every entry is
// tagged with the graph epoch it was computed at; Engine.ApplyUpdates
// advances the epoch, and the access rules guarantee a value is never
// served across epochs. One cache may back any number of engines over
// the same graph and options; it is safe for concurrent use and
// deduplicates concurrent computations of the same sub-query. See
// DESIGN.md §5 for the concurrency model and §9 for epochs.
type SharedCache = core.SharedCache

// CacheCounters is a snapshot of a SharedCache's hit/miss counters.
// Misses equals the number of structures actually computed.
type CacheCounters = core.CacheCounters

// NewSharedCache returns an empty shared-structure cache for
// NewEngineWithCache.
func NewSharedCache() *SharedCache { return core.NewSharedCache() }

// Plan is the output of Engine.Explain / Engine.ExplainQuery: the DNF
// clauses, the planner's chosen execution per clause (anchor closure,
// join direction, shared-structure vs direct automaton) with estimated
// cardinalities, and which shared structures are already cached.
// Explaining never executes or mutates anything;
// Engine.ExplainAnalyze / Engine.ExplainAnalyzeQuery additionally run
// the query and fill in the actual cardinalities.
type Plan = core.Plan

// PlanClause is one batch unit of a Plan.
type PlanClause = core.PlanClause

// NewEngine returns an engine over g with a private SharedCache.
func NewEngine(g *Graph, opts Options) *Engine { return core.New(g, opts) }

// NewEngineWithCache returns an engine over g backed by an existing
// SharedCache, so independently created engines (one per request
// goroutine, say) share closure structures. All engines on one cache
// must use the same graph, strategy and TC algorithm.
func NewEngineWithCache(g *Graph, opts Options, cache *SharedCache) *Engine {
	return core.NewWithCache(g, opts, cache)
}

// EvaluateBatch is a one-shot convenience: parse a query batch and
// evaluate it with a fresh RTCSharing engine fanned over the given
// number of workers (workers ≤ 0 uses GOMAXPROCS). All workers share
// one cache, so each distinct closure sub-query is computed exactly
// once. Results are in input order.
func EvaluateBatch(g *Graph, queries []string, workers int) ([]*Result, error) {
	return NewEngine(g, Options{}).EvaluateQueriesParallel(queries, workers)
}

// Evaluate is a one-shot convenience: parse and evaluate a single query
// with a fresh RTCSharing engine.
func Evaluate(g *Graph, query string) (*Result, error) {
	return NewEngine(g, Options{}).EvaluateQuery(query)
}

// EvaluateParallel evaluates a single query by automaton-product
// traversal fanned out over worker goroutines (workers ≤ 0 uses
// GOMAXPROCS). Start vertices partition perfectly, so this scales close
// to linearly for traversal-bound queries. Unlike Evaluate it does not
// use closure sharing — it is the right tool for one-off queries on big
// graphs, while an Engine is the right tool for query batches.
func EvaluateParallel(g *Graph, query string, workers int) (*Result, error) {
	expr, err := rpq.Parse(query)
	if err != nil {
		return nil, err
	}
	return eval.New(g, expr, eval.Options{}).EvaluateAllParallel(workers), nil
}

// ShardedEngine is a label-partitioned, in-process cluster of engine
// shards behind one coordinator. The coordinator decomposes each
// query's clause plans exactly as a single engine would, but scatters
// every shared-structure build (R+, R_G) and clause sub-relation to the
// shard owning that sub-expression's label set, gathers the sealed
// columnar relations back, and runs the anchor joins locally — so N
// shards hold N disjoint slices of the closure-cache working set while
// results stay pair-for-pair identical to a single engine. Updates fan
// out to every shard under a cluster-epoch barrier: no batch ever mixes
// shard epochs. A ShardedEngine satisfies ServerEngine, so rpqd serves
// it exactly like a single engine (rpqd -shards N). See DESIGN.md §14.
type ShardedEngine = shard.Cluster

// ShardOptions configure NewShardedEngine: the shard count, the
// label-set partitioner (nil = FNV-1a hashing) and the engine options
// applied identically to the coordinator and every shard.
type ShardOptions = shard.Options

// ShardPartitioner assigns a sub-expression's sorted label set to a
// shard; plug a custom one into ShardOptions to encode placement
// knowledge (hot labels on dedicated shards, say).
type ShardPartitioner = shard.Partitioner

// ShardStats is one shard's observability row under /metrics: its cache
// counters plus the scatter traffic routed to it.
type ShardStats = shard.Stats

// NewShardedEngine returns a label-partitioned cluster of
// opts.Shards engine shards over g, behind a coordinator implementing
// ServerEngine.
func NewShardedEngine(g *Graph, opts ShardOptions) *ShardedEngine { return shard.New(g, opts) }

// ServerEngine is the evaluation surface the HTTP server consumes; both
// a single *Engine and a *ShardedEngine satisfy it.
type ServerEngine = server.Engine

// Server is the rpqd HTTP/JSON query service over one engine: a batch
// coalescer admits concurrent POST /query requests into a bounded
// time/size window, deduplicates them by query string, evaluates the
// window as ONE engine batch — so unrelated clients share closure
// structures within a single graph epoch — and demultiplexes the sealed
// results back to the waiting requests with limit/offset paging.
// POST /update drives Engine.ApplyUpdates; GET /explain, /healthz and
// /metrics expose plans, liveness, cache counters and coalescing
// statistics. A Server is an http.Handler; create one with NewServer
// and serve it yourself, or use Serve for the whole lifecycle. See
// DESIGN.md §10.
type Server = server.Server

// ServerOptions configure a Server: the coalescing window (fixed when
// positive, adaptive within [MinWindow, MaxWindow] when zero), the
// distinct-size cap, the priority fast lane (DisableFastLane,
// FastLaneSlots), the batch fan-out, the admission control (max
// in-flight batches, queued-batch bound, per-request timeout) and the
// coalescing-off switch. The zero value gets the documented defaults.
type ServerOptions = server.Options

// ServerMetrics is the GET /metrics payload: the graph epoch and shape,
// the coalescing statistics, the shared-cache counters (including the
// CrossEpochHits tripwire), the engine's timing split, the latency
// histograms (ServerLatencyInfo) and the Go runtime vitals
// (ServerRuntimeInfo).
type ServerMetrics = server.Metrics

// StageTimer is the per-request latency breakdown a /query response
// carries (QueryResponse.Stages) and EvaluateRelTimed fills: one
// nanosecond counter per pipeline stage (queue, coalesce-wait, plan,
// closure-build, join, seal, page, other). The stages partition the
// request's wall time.
type StageTimer = core.StageTimer

// HistogramStats is one log-bucketed latency histogram as /metrics
// renders it: count, mean, interpolated p50/p90/p99 and exact max, in
// milliseconds.
type HistogramStats = server.HistogramStats

// StageHistograms is the per-stage section of the /metrics latency
// payload: one HistogramStats per StageTimer stage, counting only the
// requests in which that stage actually ran.
type StageHistograms = server.StageHistograms

// ServerLatencyInfo is the latency section of /metrics: the overall
// request-latency histogram, its split by serving path (fast_path,
// fast_lane, windowed, direct), the per-stage histograms, and the
// adaptive window controller's gauges (arrival rate, batch occupancy,
// current window).
type ServerLatencyInfo = server.LatencyInfo

// ServerRuntimeInfo is the runtime section of /metrics: goroutine
// count, heap in use, GC counters and the last GC pause — the vitals
// latency spikes are correlated against.
type ServerRuntimeInfo = server.RuntimeInfo

// CoalescerStats is the batch coalescer's activity snapshot inside
// ServerMetrics: admissions, dedup hits, batch sizes and seal reasons,
// rejections and timeouts.
type CoalescerStats = server.CoalescerStats

// ResultStream is a pull-based, epoch-pinned enumeration of one query's
// result, opened with Engine.OpenStream (or ShardedEngine.OpenStream).
// It yields (src, dst) pairs in exactly the sealed relation's
// (src, dst) order without materialising the top-level relation: the
// shared inputs (reduced closures, sub-relations) resolve at open time
// against one immutable engine version, then Next joins one source
// vertex at a time into a caller-supplied buffer. Streams opened before
// an update keep answering at their pinned epoch; Close releases the
// stream's scratch back to the engine.
type ResultStream = core.ResultStream

// StreamOptions configures Engine.OpenStream; Limit caps the pairs the
// stream yields (0 = all), making ASK-with-budget and top-k prefixes
// one option away.
type StreamOptions = core.StreamOptions

// StreamStats is a stream's progress snapshot: sources joined, rows
// touched and pairs yielded so far.
type StreamStats = core.StreamStats

// ErrStreamClosed is returned by ResultStream.Next after Close.
var ErrStreamClosed = core.ErrStreamClosed

// WitnessPath is one shortest label-path witness for a result pair, as
// Engine.Witness reconstructs it: the endpoints, the edge labels in
// order (inverse traversals spelled "^label"), and the graph epoch it
// was derived at.
type WitnessPath = core.WitnessPath

// AskResponse is the body of the server's /query?ask=1 existence
// probe: found true/false plus the rows-scanned instrumentation of the
// short-circuit evaluator.
type AskResponse = server.AskResponse

// WitnessResponse is the body of the server's /query?witness=1 path:
// one shortest label-path witness, or found=false.
type WitnessResponse = server.WitnessResponse

// StreamingInfo is the streaming-delivery section of /metrics: streams
// opened, pairs streamed, ASK and witness requests, cursor resumes and
// epoch aborts (stale cursors plus lag-aborted streams).
type StreamingInfo = server.StreamingInfo

// NewServer returns the rpqd HTTP handler over engine — a single
// *Engine or a *ShardedEngine. The engine may be shared with in-process
// users; updates through either side keep both epoch-consistent. Close
// the server to drain its coalescer.
func NewServer(engine ServerEngine, opts ServerOptions) *Server {
	return server.New(engine, opts)
}

// Serve listens on addr and serves the rpqd HTTP API over engine until
// ctx is cancelled, then shuts down gracefully: the listener closes,
// in-flight requests and the pending coalescing window finish, and nil
// is returned. A non-nil error is a listen or serve failure.
func Serve(ctx context.Context, addr string, engine ServerEngine, opts ServerOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, l, engine, opts)
}

// ServeListener is Serve over an existing listener — the form that lets
// callers bind port 0 and read the chosen address back. The listener is
// closed when ServeListener returns.
func ServeListener(ctx context.Context, l net.Listener, engine ServerEngine, opts ServerOptions) error {
	srv := server.New(engine, opts)
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := hs.Shutdown(shutCtx)
	srv.Close()
	return err
}

// RMATConfig parameterises the synthetic graph generator (the
// recursive-matrix model used by the paper's evaluation datasets).
type RMATConfig = datagen.RMATConfig

// GenerateRMAT draws a random edge-labeled multigraph from the RMAT
// distribution; see RMATConfig.
func GenerateRMAT(cfg RMATConfig) (*Graph, error) { return datagen.RMAT(cfg) }

// Store is a persistence backend for engine state: one snapshot slot
// (the full engine state at one graph epoch, closures included) plus an
// append-only, CRC-framed log of update batches. OpenStore returns the
// file-directory implementation; the interface keeps other backends
// pluggable.
type Store = store.Store

// StoreStats is a Store's size and activity bookkeeping: snapshot bytes
// and epoch, snapshots written, and the update-log record/byte counts
// since the last rotation. Served under /metrics when rpqd runs with
// -data.
type StoreStats = store.Stats

// PersistentEngine wraps an Engine so every effective update batch is
// durably logged (fsync) before ApplyUpdates returns, with snapshot
// compaction on demand (Snapshot) or automatically every N batches.
// Reads are the embedded Engine's own methods. Create one with
// OpenEngine.
type PersistentEngine = store.Persistent

// PersistOptions configures a PersistentEngine's automatic snapshot
// compaction.
type PersistOptions = store.Options

// RecoveryInfo describes how a PersistentEngine reached its boot state:
// whether a snapshot was restored (and from which epoch), how many
// logged batches were replayed on top, how many cached closure
// structures came back warm, and the recovery wall-clock.
type RecoveryInfo = store.RecoveryInfo

// SnapshotInfo describes one written snapshot: the epoch it pinned, its
// size, and how many cached structures it carries. It is the
// POST /admin/snapshot response body.
type SnapshotInfo = store.SnapshotInfo

// PersistInfo is the persistence section of rpqd's /metrics: the store's
// bookkeeping, the automatic-snapshot position, and the RecoveryInfo of
// the boot.
type PersistInfo = store.PersistInfo

// ErrNoSnapshot is returned by Store.LoadSnapshot when the backend holds
// no snapshot yet — the cold-boot signal, distinct from a corrupt
// snapshot (a real error).
var ErrNoSnapshot = store.ErrNoSnapshot

// OpenStore opens (creating if needed) a file-directory Store rooted at
// dir: snapshot.bin plus wal.log, written with atomic rename + fsync. A
// torn log tail left by a crash is repaired on open.
func OpenStore(dir string) (Store, error) { return store.OpenDir(dir) }

// OpenEngine boots a PersistentEngine from s. With a resident snapshot,
// the engine restores the graph, epoch and cached closure structures
// from it and replays the update-log tail through the normal update
// path — recovered state is identical to never having stopped, and the
// first queries hit the restored structures instead of recomputing
// them. With an empty store this is a cold boot: seed must be non-nil
// and an initial snapshot is written to anchor the log.
func OpenEngine(s Store, seed *Graph, opts Options, popts PersistOptions) (*PersistentEngine, RecoveryInfo, error) {
	return store.Open(s, seed, opts, popts)
}

// ErrDegraded is returned by PersistentEngine.ApplyUpdates while the
// engine is in read-only degraded mode: a WAL append or snapshot commit
// failed, so accepting further mutations would let memory run ahead of
// what a restart recovers. Queries keep serving the last durable epoch;
// a successful PersistentEngine.Probe re-arms updates (rpqd probes
// automatically and answers 503 + Retry-After meanwhile).
var ErrDegraded = store.ErrDegraded

// ErrQuarantined is returned through /query (as HTTP 422) for a query
// string that repeatedly panicked the evaluator: the panic is recovered
// and isolated each time, but a string that keeps crashing is rejected
// at admission so one pathological input cannot crash-loop the daemon.
var ErrQuarantined = server.ErrQuarantined

// ErrInjected marks a failure manufactured by a FaultInjector; tests
// match on it with errors.Is to tell injected faults from real ones.
var ErrInjected = store.ErrInjected

// QueryPanicError reports a panic recovered during one query's
// evaluation: the query text, the panic value and the captured stack.
// Batch neighbours are unaffected; rpqd answers the panicking query
// with HTTP 500 and quarantines the string if it keeps crashing.
type QueryPanicError = core.QueryPanicError

// FaultOp identifies one class of file operation a FaultInjector can
// fail: FaultWrite, FaultSync or FaultRename.
type FaultOp = store.FaultOp

// The FaultOp kinds: data writes, fsyncs, and atomic-replace renames.
const (
	FaultWrite  = store.OpWrite
	FaultSync   = store.OpSync
	FaultRename = store.OpRename
)

// FaultInjector decides, deterministically from a seed, which store
// file operations fail — probabilistically (Arm), by countdown
// (FailNth), optionally tearing writes halfway (ShortWrites). Drive a
// NewFaultyStore or OpenStoreFaulty with one to exercise the
// degradation ladder; see DESIGN.md §13.
type FaultInjector = store.Injector

// NewFaultInjector returns an injector with no faults armed. A fixed
// seed and a fixed operation sequence reproduce the same fault pattern.
func NewFaultInjector(seed int64) *FaultInjector { return store.NewInjector(seed) }

// NewFaultyStore wraps any Store so its mutating operations (AppendBatch,
// WriteSnapshot, Probe) fail according to inj; reads pass through. Place
// it beneath OpenEngine to test how a deployment behaves when the disk
// misbehaves.
func NewFaultyStore(inner Store, inj *FaultInjector) Store { return store.NewFaulty(inner, inj) }

// OpenStoreFaulty is OpenStore with inj consulted at the directory
// backend's write/sync/rename sites, failing the real file operations
// themselves — the deeper seam, exercising atomic rotation and WAL
// tail-repair against real files (NewFaultyStore fails at the Store
// interface boundary instead).
func OpenStoreFaulty(dir string, inj *FaultInjector) (Store, error) {
	return store.OpenDirFaulty(dir, inj)
}
