module rtcshare

go 1.24
